//! Traveling Salesperson Problem (paper §4.3.4).
//!
//! The paper's TSP is written in Concurrent Smalltalk on the COSMOS
//! runtime, whose style this module mirrors ("COSMOS-lite"):
//!
//! * the distance matrix is a **global named object**: every access goes
//!   through `XLATE` of its global id (entered into the name table at
//!   boot), reproducing CST's enormous xlate rates with a tiny miss ratio
//!   (Table 5);
//! * **tasks are messages**: a task is a unique subpath of a given length
//!   (`[hdr, visited-mask, last-city, cost]`), spread evenly at start —
//!   every node enumerates the prefix space and self-posts its share;
//! * the **worker thread is periodically suspended** — every `yield_every`
//!   expansion steps it re-posts itself as a continuation message, the
//!   paper's "null procedure call" that lets queued bound updates dispatch;
//! * **bound propagation**: a new best tour is sent to node 0 and
//!   broadcast down a binary tree; receivers prune against the tightened
//!   bound mid-task;
//! * **work-requesting**: an idle worker asks rotating victims for a
//!   pooled task, the paper's dynamic load balancing that keeps TSP idle
//!   time down at 3.8%; a termination broadcast from node 0 quenches the
//!   requests once every tour is accounted for.
//!
//! Every node enumerates the prefixes twice (count, then post) so the
//! completion count is known before any result arrives.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, MachineStats, StartPolicy};
use jm_prng::Prng;
use jm_runtime::nnr;

/// Words per task context slot: free-link, saved sp, padding, then up to 16
/// frames of 4 words.
const SLOT_WORDS: u32 = 8 + 16 * 4;
/// Context slots per node.
const NSLOTS: u32 = 128;
/// The distance matrix's global object id.
const DIST_OBJ: u32 = 1;
/// "Infinity" initial bound.
const BIG: i32 = 1_000_000_000;

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TspConfig {
    /// Number of cities (tour starts and ends at city 0).
    pub cities: u32,
    /// Seed for the distance matrix.
    pub seed: u64,
    /// Task prefix length in cities (including city 0); `None` picks the
    /// smallest depth giving at least three tasks per node.
    pub task_depth: Option<u32>,
    /// Expansion steps between voluntary suspensions (the CST null-call
    /// period).
    pub yield_every: u32,
}

impl TspConfig {
    /// The paper's 14-city configuration.
    pub fn paper() -> TspConfig {
        TspConfig {
            cities: 14,
            seed: 0x75b,
            task_depth: None,
            yield_every: 64,
        }
    }

    /// A scaled configuration with identical structure.
    pub fn scaled() -> TspConfig {
        TspConfig {
            cities: 9,
            seed: 0x75b,
            task_depth: None,
            yield_every: 32,
        }
    }

    /// Generates the (asymmetric) distance matrix, entries 1..100.
    pub fn matrix(&self) -> Vec<u32> {
        let c = self.cities as usize;
        let mut rng = Prng::new(self.seed);
        let mut m = vec![0u32; c * c];
        for i in 0..c {
            for j in 0..c {
                if i != j {
                    m[i * c + j] = rng.range_u32(1, 100);
                }
            }
        }
        m
    }

    /// Number of depth-`d` prefixes (tasks): (C-1)(C-2)…(C-d+1).
    pub fn task_count(&self, depth: u32) -> u64 {
        let mut t = 1u64;
        for k in 1..depth {
            t *= u64::from(self.cities - k);
        }
        t
    }

    /// Resolves the task depth for a machine size.
    pub fn depth_for(&self, nodes: u32) -> u32 {
        if let Some(d) = self.task_depth {
            return d.clamp(2, self.cities - 1);
        }
        for d in 2..self.cities {
            if self.task_count(d) >= 3 * u64::from(nodes) {
                return d;
            }
        }
        self.cities - 1
    }
}

/// Host reference: branch-and-bound minimum tour cost.
pub fn reference(matrix: &[u32], cities: u32) -> u32 {
    let c = cities as usize;
    fn go(m: &[u32], c: usize, mask: u32, last: usize, cost: u32, best: &mut u32) {
        if cost >= *best {
            return;
        }
        if mask == (1 << c) - 1 {
            let total = cost + m[last * c];
            if total < *best {
                *best = total;
            }
            return;
        }
        for next in 1..c {
            if mask & (1 << next) == 0 {
                go(
                    m,
                    c,
                    mask | (1 << next),
                    next,
                    cost + m[last * c + next],
                    best,
                );
            }
        }
    }
    let mut best = u32::MAX;
    go(matrix, c, 1, 0, 0, &mut best);
    best
}

// tsp_p layout: [0] mode, [1] task counter, [2] done, [3] expected,
// [4] finished, [5] enum mask, [6] current context slot (-1 = none),
// [7] sp, [8] budget, [9] enum saved level, [10] bit scratch,
// [11] cost scratch, [12] bound saved cost, [13] saved child,
// [14] enum link, [15] spare, [16] pending tasks, [17] steal probe,
// [18] stop flag, [19] worker-awake flag, [20..24] spare.

/// Builds the SPMD TSP program for `nodes` nodes.
///
/// # Panics
///
/// Panics on infeasible configurations (too many cities, or more
/// outstanding tasks per node than the queue and context pool can hold).
pub fn program(cfg: &TspConfig, nodes: u32) -> Program {
    let c = cfg.cities as i32;
    assert!((4..=16).contains(&c), "city count out of range");
    let d = cfg.depth_for(nodes) as i32;
    assert!(d >= 2 && d < c, "bad task depth {d}");
    let tasks = cfg.task_count(d as u32);
    let per_node = tasks.div_ceil(u64::from(nodes));
    assert!(
        per_node <= 96,
        "{per_node} tasks/node would overflow the message queue (paper §4.3.3)"
    );
    let full = (1i32 << c) - 1;
    let slot = SLOT_WORDS as i32;
    let route0 = RouteWord::new(Coord::new(0, 0, 0)).to_word();
    let sym_dist = Word::sym(DIST_OBJ);

    let mut b = Builder::new();
    b.reserve("tsp_dist", Region::Imem, (c * c) as u32);
    b.data("tsp_best", Region::Imem, vec![Word::int(BIG)]);
    // tsp_p: see the layout comment above; [6] (current context slot)
    // boots as -1 = "no task in progress".
    let mut tsp_p = vec![Word::int(0); 24];
    tsp_p[6] = Word::int(-1);
    b.data("tsp_p", Region::Imem, tsp_p);
    // Pending-task pool: 3-word records, sized for the queue-bounded
    // maximum plus stolen arrivals.
    b.data("tsp_taskq", Region::Imem, vec![Word::int(0); 128 * 3]);
    b.reserve("tsp_ep", Region::Imem, 17); // enumeration path
    b.reserve("tsp_ec", Region::Imem, 17); // enumeration costs
    let mut pool = vec![Word::int(0); (NSLOTS * SLOT_WORDS) as usize];
    for i in 0..NSLOTS {
        let next = if i + 1 == NSLOTS { -1 } else { i as i32 + 1 };
        pool[(i * SLOT_WORDS) as usize] = Word::int(next);
    }
    b.data("tsp_pool", Region::Emem, pool);
    b.data("tsp_free", Region::Imem, vec![Word::int(0)]);

    // ---------------- background: boot + SPMD enumeration ----------
    b.label("main");
    // COSMOS-lite boot: register the distance matrix as a global object.
    b.mark(StatClass::Xlate);
    b.enter(sym_dist, jm_asm::seg("tsp_dist"));
    b.mark(StatClass::Compute);
    // Every node enumerates the full prefix space (count pass, then a
    // self-posting pass that keeps only its own share).
    b.load_seg(A0, "tsp_p");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(MemRef::disp(A0, 1), 0);
    b.call("tsp_expand");
    b.load_seg(A0, "tsp_p");
    b.mov(R0, MemRef::disp(A0, 1));
    b.mov(MemRef::disp(A0, 3), R0); // expected completions (used on node 0)
    b.mov(MemRef::disp(A0, 0), 1);
    b.mov(MemRef::disp(A0, 1), 0);
    b.call("tsp_expand");
    // Open the work-requesting gate: stealing before distribution ends
    // would storm the P0 queue and starve this enumerator. If the worker
    // went to sleep against the closed gate, wake it to go stealing.
    b.load_seg(A0, "tsp_p");
    b.mov(MemRef::disp(A0, 21), 1);
    b.mov(R2, MemRef::disp(A0, 19));
    b.bnz(R2, "main_end");
    b.mov(MemRef::disp(A0, 19), 1);
    b.send(P0, Special::Nnr);
    b.sende(P0, hdr("tsp_work", 1));
    b.label("main_end");
    b.suspend();

    // ---------------- prefix enumeration (background) -----------
    // A0 = tsp_p, A1 = tsp_ep, A2 = dist, A3 = tsp_ec;
    // R0 = level, R1 = trial city, R2/R3 scratch.
    b.label("tsp_expand");
    b.load_seg(A0, "tsp_p");
    b.mov(MemRef::disp(A0, 14), R3);
    b.load_seg(A1, "tsp_ep");
    b.load_seg(A2, "tsp_dist");
    b.load_seg(A3, "tsp_ec");
    b.mov(MemRef::disp(A1, 0), 0); // city 0 at level 0
    b.mov(MemRef::disp(A3, 0), 0); // cost 0
    b.mov(MemRef::disp(A0, 5), 1); // mask = {0}
    b.movi(R0, 1);
    b.mov(MemRef::disp(A1, 1), 0); // level-1 trials start at city 1
    b.label("e_try");
    b.mov(R1, MemRef::reg(A1, R0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::reg(A1, R0), R1);
    b.alu(AluOp::Eq, R2, R1, c);
    b.bt(R2, "e_back");
    b.movi(R2, 1);
    b.alu(AluOp::Lsh, R2, R2, R1);
    b.alu(AluOp::And, R2, R2, MemRef::disp(A0, 5));
    b.bnz(R2, "e_try"); // visited
                        // place: cost' = ec[l-1] + dist[ep[l-1]][c]
    b.subi(R2, R0, 1);
    b.mov(R3, MemRef::reg(A1, R2)); // previous city
    b.alu(AluOp::Mul, R3, R3, c);
    b.alu(AluOp::Add, R3, R3, R1);
    b.mov(R3, MemRef::reg(A2, R3)); // distance
    b.subi(R2, R0, 1);
    b.mov(R2, MemRef::reg(A3, R2)); // ec[l-1]
    b.alu(AluOp::Add, R3, R3, R2);
    b.mov(MemRef::reg(A3, R0), R3); // ec[l]
                                    // mask |= 1<<c
    b.movi(R2, 1);
    b.alu(AluOp::Lsh, R2, R2, R1);
    b.alu(AluOp::Or, R2, R2, MemRef::disp(A0, 5));
    b.mov(MemRef::disp(A0, 5), R2);
    // emit or descend
    b.alu(AluOp::Add, R2, R0, 1);
    b.alu(AluOp::Eq, R3, R2, d);
    b.bt(R3, "e_emit");
    b.mov(R0, R2);
    b.mov(MemRef::reg(A1, R0), 0);
    b.br("e_try");
    b.label("e_back");
    b.subi(R0, R0, 1);
    b.bz(R0, "e_done");
    // clear the bit of the city we are returning to
    b.mov(R1, MemRef::reg(A1, R0));
    b.movi(R2, 1);
    b.alu(AluOp::Lsh, R2, R2, R1);
    b.alu1(jm_isa::Alu1Op::Inv, R2, R2);
    b.alu(AluOp::And, R2, R2, MemRef::disp(A0, 5));
    b.mov(MemRef::disp(A0, 5), R2);
    b.br("e_try");
    b.label("e_done");
    b.jmp(MemRef::disp(A0, 14));

    b.label("e_emit");
    b.mov(R2, MemRef::disp(A0, 0));
    b.bnz(R2, "e_send");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 1), R2);
    b.br("e_unplace");
    b.label("e_send");
    // Ownership filter: self-post only tasks whose index maps to this node
    // (even initial distribution, no single-node scatter bottleneck; the
    // work-requesting protocol rebalances from there).
    b.mov(R2, MemRef::disp(A0, 1));
    b.alu(AluOp::Rem, R2, R2, Special::NNodes);
    b.alu(AluOp::Eq, R2, R2, Special::Nid);
    b.bf(R2, "e_count");
    b.mark(StatClass::Comm);
    b.send(P0, Special::Nnr);
    b.send2(P0, hdr("tsp_task", 4), MemRef::disp(A0, 5)); // mask
    b.mov(R2, MemRef::reg(A1, R0));
    b.send2e(P0, R2, MemRef::reg(A3, R0)); // last city, cost
    b.mark(StatClass::Compute);
    b.label("e_count");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 1), R2);
    b.label("e_unplace");
    // clear current city's bit; continue trying at this level
    b.mov(R1, MemRef::reg(A1, R0));
    b.movi(R2, 1);
    b.alu(AluOp::Lsh, R2, R2, R1);
    b.alu1(jm_isa::Alu1Op::Inv, R2, R2);
    b.alu(AluOp::And, R2, R2, MemRef::disp(A0, 5));
    b.mov(MemRef::disp(A0, 5), R2);
    b.br("e_try");

    // ---------------- task intake: push into the local pool ----------------
    // Tasks are queued in node memory (not processed inline) so they can be
    // redistributed — the paper's dynamic load balancing ("incomplete tours
    // can be redistributed to balance the load").
    b.label("tsp_task");
    b.load_seg(A0, "tsp_p");
    b.load_seg(A1, "tsp_taskq");
    b.mov(R0, MemRef::disp(A0, 16)); // pending
    b.alu(AluOp::Mul, R1, R0, 3);
    b.mov(R2, MemRef::disp(A3, 1));
    b.mov(MemRef::reg(A1, R1), R2); // mask
    b.addi(R1, R1, 1);
    b.mov(R2, MemRef::disp(A3, 2));
    b.mov(MemRef::reg(A1, R1), R2); // last
    b.addi(R1, R1, 1);
    b.mov(R2, MemRef::disp(A3, 3));
    b.mov(MemRef::reg(A1, R1), R2); // cost
    b.addi(R0, R0, 1);
    b.mov(MemRef::disp(A0, 16), R0);
    // Wake the worker if it is asleep.
    b.mov(R2, MemRef::disp(A0, 19));
    b.bnz(R2, "tt_end");
    b.mov(MemRef::disp(A0, 19), 1);
    b.send(P0, Special::Nnr);
    b.sende(P0, hdr("tsp_work", 1));
    b.label("tt_end");
    b.suspend();

    // ---------------- the worker: the "task-processing" thread ----------
    // A0 = tsp_p, A2 = context pool; per step: R0 = frame base index.
    b.label("tsp_work");
    b.load_seg(A0, "tsp_p");
    b.mov(A2, jm_asm::seg("tsp_pool"));
    b.mov(MemRef::disp(A0, 8), cfg.yield_every as i32);
    b.label("w_step");
    // Have a task in progress?
    b.mov(R0, MemRef::disp(A0, 6));
    b.alu(AluOp::Ge, R2, R0, 0);
    b.bt(R2, "t_step");
    // Acquire: pop the local pool, or go work-requesting.
    b.mov(R1, MemRef::disp(A0, 16));
    b.bz(R1, "w_steal");
    b.subi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 16), R1);
    // Allocate a search context.
    b.load_seg(A1, "tsp_free");
    b.mov(R0, MemRef::disp(A1, 0));
    b.mov(MemRef::disp(A0, 6), R0);
    b.mov(MemRef::disp(A0, 7), 0); // sp = 0
    b.alu(AluOp::Mul, R2, R0, slot);
    b.mov(R3, MemRef::reg(A2, R2)); // next free
    b.mov(MemRef::disp(A1, 0), R3);
    // Copy the task record into frame 0.
    b.alu(AluOp::Mul, R0, R1, 3);
    b.addi(R2, R2, 8);
    b.load_seg(A1, "tsp_taskq");
    for _ in 0..3 {
        b.mov(R3, MemRef::reg(A1, R0));
        b.mov(MemRef::reg(A2, R2), R3);
        b.addi(R0, R0, 1);
        b.addi(R2, R2, 1);
    }
    b.mov(MemRef::reg(A2, R2), 0); // tried = 0
    b.br("w_step");

    // No local work: request some (the paper's "work-requesting" threads).
    b.label("w_steal");
    b.mov(R2, MemRef::disp(A0, 18)); // stopped?
    b.bnz(R2, "w_off");
    b.mov(R2, MemRef::disp(A0, 21)); // distribution still running?
    b.bz(R2, "w_off");
    b.mov(R1, MemRef::disp(A0, 17));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 17), R1);
    b.mov(R0, Special::Nid);
    b.alu(AluOp::Add, R0, R0, R1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.alu(AluOp::Eq, R2, R0, Special::Nid);
    b.bf(R2, "w_victim");
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.label("w_victim");
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Compute);
    b.send(P0, R0);
    b.send2e(P0, hdr("tsp_req", 2), Special::Nnr);
    b.label("w_off");
    b.mov(MemRef::disp(A0, 19), 0); // worker asleep
    b.suspend();

    b.label("t_step");
    b.mov(R1, MemRef::disp(A0, 7));
    b.alu(AluOp::Lt, R2, R1, 0);
    b.bt(R2, "t_task_done");
    // frame base = slot*SLOT + 8 + 4*sp
    b.mov(R0, MemRef::disp(A0, 6));
    b.alu(AluOp::Mul, R0, R0, slot);
    b.alu(AluOp::Lsh, R1, R1, 2);
    b.alu(AluOp::Add, R0, R0, R1);
    b.addi(R0, R0, 8);
    // c = ++frame.tried
    b.addi(R1, R0, 3);
    b.mov(R2, MemRef::reg(A2, R1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::reg(A2, R1), R2);
    b.alu(AluOp::Eq, R3, R2, c);
    b.bt(R3, "t_pop");
    // visited?
    b.movi(R3, 1);
    b.alu(AluOp::Lsh, R3, R3, R2);
    b.mov(R1, MemRef::reg(A2, R0)); // mask
    b.alu(AluOp::And, R1, R1, R3);
    b.bnz(R1, "t_budget");
    b.mov(MemRef::disp(A0, 10), R3); // stash bit
                                     // CST-style object access: xlate the matrix's global name.
    b.mark(StatClass::Xlate);
    b.xlate(A1, sym_dist);
    b.mark(StatClass::Compute);
    // newcost = frame.cost + dist[frame.last * C + c]
    b.addi(R1, R0, 2);
    b.mov(R1, MemRef::reg(A2, R1)); // cost
    b.addi(R3, R0, 1);
    b.mov(R3, MemRef::reg(A2, R3)); // last
    b.alu(AluOp::Mul, R3, R3, c);
    b.alu(AluOp::Add, R3, R3, R2);
    b.mov(R3, MemRef::reg(A1, R3)); // distance
    b.alu(AluOp::Add, R1, R1, R3);
    // prune against the global bound
    b.load_seg(A1, "tsp_best");
    b.alu(AluOp::Ge, R3, R1, MemRef::disp(A1, 0));
    b.bt(R3, "t_budget");
    // complete tour?
    b.mov(R3, MemRef::reg(A2, R0));
    b.alu(AluOp::Or, R3, R3, MemRef::disp(A0, 10));
    b.alu(AluOp::Eq, R3, R3, full);
    b.bt(R3, "t_complete");
    // push frame: [mask|bit, c, newcost, 0]
    b.mov(MemRef::disp(A0, 11), R1); // stash newcost
    b.addi(R3, R0, 4);
    b.mov(R1, MemRef::reg(A2, R0));
    b.alu(AluOp::Or, R1, R1, MemRef::disp(A0, 10));
    b.mov(MemRef::reg(A2, R3), R1);
    b.addi(R3, R3, 1);
    b.mov(MemRef::reg(A2, R3), R2);
    b.addi(R3, R3, 1);
    b.mov(R1, MemRef::disp(A0, 11));
    b.mov(MemRef::reg(A2, R3), R1);
    b.addi(R3, R3, 1);
    b.mov(MemRef::reg(A2, R3), 0);
    b.mov(R1, MemRef::disp(A0, 7));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 7), R1);
    b.br("t_budget");

    b.label("t_complete");
    // tour cost = newcost + dist[c][0]
    b.mark(StatClass::Xlate);
    b.xlate(A1, sym_dist);
    b.mark(StatClass::Compute);
    b.alu(AluOp::Mul, R2, R2, c);
    b.mov(R2, MemRef::reg(A1, R2));
    b.alu(AluOp::Add, R1, R1, R2);
    b.load_seg(A1, "tsp_best");
    b.alu(AluOp::Ge, R2, R1, MemRef::disp(A1, 0));
    b.bt(R2, "t_budget");
    b.mov(MemRef::disp(A1, 0), R1);
    b.mark(StatClass::Comm);
    b.send(P0, route0);
    b.send2e(P0, hdr("tsp_bound", 2), R1);
    b.mark(StatClass::Compute);
    b.br("t_budget");

    b.label("t_pop");
    b.mov(R1, MemRef::disp(A0, 7));
    b.subi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 7), R1);
    b.label("t_budget");
    b.mov(R1, MemRef::disp(A0, 8));
    b.subi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 8), R1);
    b.bnz(R1, "w_step");
    // Voluntary suspension (the CST null call): repost the worker so
    // queued bound updates and task messages can dispatch, then yield.
    b.mark(StatClass::Sync);
    b.send(P0, Special::Nnr);
    b.sende(P0, hdr("tsp_work", 1));
    b.suspend();

    b.label("t_task_done");
    // free the context, report completion to node 0, continue working
    b.mov(R0, MemRef::disp(A0, 6));
    b.alu(AluOp::Mul, R1, R0, slot);
    b.load_seg(A1, "tsp_free");
    b.mov(R2, MemRef::disp(A1, 0));
    b.mov(MemRef::reg(A2, R1), R2);
    b.mov(MemRef::disp(A1, 0), R0);
    b.movi(R1, -1);
    b.mov(MemRef::disp(A0, 6), R1);
    b.mark(StatClass::Comm);
    b.send(P0, route0);
    b.sende(P0, hdr("tsp_done", 1));
    b.mark(StatClass::Compute);
    b.br("t_budget");

    // ---------------- bound broadcast ----------------
    b.label("tsp_bound");
    b.mark(StatClass::Sync);
    b.load_seg(A0, "tsp_best");
    b.mov(R0, MemRef::disp(A3, 1));
    b.alu(AluOp::Ge, R1, R0, MemRef::disp(A0, 0));
    b.bt(R1, "tb_end");
    b.mov(MemRef::disp(A0, 0), R0);
    // forward to tree children 2i+1, 2i+2
    b.load_seg(A1, "tsp_p");
    b.mov(MemRef::disp(A1, 12), R0);
    b.mov(R1, Special::Nid);
    b.alu(AluOp::Lsh, R1, R1, 1);
    b.addi(R1, R1, 1);
    b.alu(AluOp::Lt, R2, R1, Special::NNodes);
    b.bf(R2, "tb_end");
    b.mov(MemRef::disp(A1, 13), R1);
    b.mov(R0, R1);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Sync);
    b.send(P0, R0);
    b.load_seg(A1, "tsp_p");
    b.send2e(P0, hdr("tsp_bound", 2), MemRef::disp(A1, 12));
    b.mov(R1, MemRef::disp(A1, 13));
    b.addi(R1, R1, 1);
    b.alu(AluOp::Lt, R2, R1, Special::NNodes);
    b.bf(R2, "tb_end");
    b.mov(R0, R1);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Sync);
    b.send(P0, R0);
    b.load_seg(A1, "tsp_p");
    b.send2e(P0, hdr("tsp_bound", 2), MemRef::disp(A1, 12));
    b.label("tb_end");
    b.suspend();

    // ---------------- work redistribution ----------------
    // tsp_req: [hdr, requester_route] — hand over a pooled task, or say no.
    b.label("tsp_req");
    b.load_seg(A0, "tsp_p");
    b.mov(R1, MemRef::disp(A0, 16));
    b.bz(R1, "rq_none");
    b.subi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 16), R1);
    b.alu(AluOp::Mul, R0, R1, 3);
    b.load_seg(A1, "tsp_taskq");
    b.mark(StatClass::Comm);
    b.send(P0, MemRef::disp(A3, 1));
    b.send(P0, hdr("tsp_task", 4));
    b.mov(R2, MemRef::reg(A1, R0));
    b.send(P0, R2);
    b.addi(R0, R0, 1);
    b.mov(R2, MemRef::reg(A1, R0));
    b.send(P0, R2);
    b.addi(R0, R0, 1);
    b.mov(R2, MemRef::reg(A1, R0));
    b.sende(P0, R2);
    b.suspend();
    b.label("rq_none");
    b.mark(StatClass::Comm);
    b.send(P0, MemRef::disp(A3, 1));
    b.sende(P0, hdr("tsp_none", 1));
    b.suspend();

    // tsp_none: the victim had nothing — retry elsewhere unless stopped.
    b.label("tsp_none");
    b.load_seg(A0, "tsp_p");
    b.mov(R2, MemRef::disp(A0, 18));
    b.bnz(R2, "tn_end");
    b.mov(R2, MemRef::disp(A0, 19));
    b.bnz(R2, "tn_end");
    b.mov(MemRef::disp(A0, 19), 1);
    b.send(P0, Special::Nnr);
    b.sende(P0, hdr("tsp_work", 1));
    b.label("tn_end");
    b.suspend();

    // tsp_stop: tree-broadcast termination (quenches work-requesting).
    b.label("tsp_stop");
    b.load_seg(A0, "tsp_p");
    b.mov(MemRef::disp(A0, 18), 1);
    b.mov(R1, Special::Nid);
    b.alu(AluOp::Lsh, R1, R1, 1);
    b.addi(R1, R1, 1);
    b.alu(AluOp::Lt, R2, R1, Special::NNodes);
    b.bf(R2, "ts_end");
    b.mov(MemRef::disp(A0, 13), R1);
    b.mov(R0, R1);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Compute);
    b.send(P0, R0);
    b.sende(P0, hdr("tsp_stop", 1));
    b.load_seg(A0, "tsp_p");
    b.mov(R1, MemRef::disp(A0, 13));
    b.addi(R1, R1, 1);
    b.alu(AluOp::Lt, R2, R1, Special::NNodes);
    b.bf(R2, "ts_end");
    b.mov(R0, R1);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Compute);
    b.send(P0, R0);
    b.sende(P0, hdr("tsp_stop", 1));
    b.label("ts_end");
    b.suspend();

    // ---------------- completion counting on node 0 ----------------
    b.label("tsp_done");
    b.load_seg(A0, "tsp_p");
    b.mov(R1, MemRef::disp(A0, 2));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 2), R1);
    b.alu(AluOp::Eq, R2, R1, MemRef::disp(A0, 3));
    b.bf(R2, "td_end");
    b.mov(MemRef::disp(A0, 4), 1);
    // All tours explored: broadcast termination from the root.
    b.send(P0, route0);
    b.sende(P0, hdr("tsp_stop", 1));
    b.label("td_end");
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    b.assemble().expect("tsp assembles")
}

/// Loads the distance matrix onto every node; returns it.
pub fn setup(m: &mut JMachine, cfg: &TspConfig) -> Vec<u32> {
    let matrix = cfg.matrix();
    let seg = m.program().segment("tsp_dist");
    for node in 0..m.node_count() {
        for (i, &v) in matrix.iter().enumerate() {
            m.write_word(NodeId(node), seg.base + i as u32, Word::int(v as i32));
        }
    }
    matrix
}

/// Result of a validated run.
#[derive(Debug, Clone)]
pub struct TspRun {
    /// Optimal tour cost (validated).
    pub best: u32,
    /// Task prefix depth used.
    pub depth: u32,
    /// Number of tasks.
    pub tasks: u64,
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: MachineStats,
}

/// Builds, runs, and validates TSP on `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the tour cost differs from the host reference.
pub fn run(nodes: u32, cfg: &TspConfig, max_cycles: u64) -> Result<TspRun, MachineError> {
    run_on(MachineConfig::new(nodes), cfg, max_cycles)
}

/// [`run`] on an explicit machine configuration (engine, fault plan,
/// mesh shape). The node count comes from `mcfg`; the start policy is
/// forced to [`StartPolicy::AllNodes`], which the app requires.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the tour cost differs from the host reference.
pub fn run_on(
    mcfg: MachineConfig,
    cfg: &TspConfig,
    max_cycles: u64,
) -> Result<TspRun, MachineError> {
    let nodes = mcfg.nodes();
    let p = program(cfg, nodes);
    let param = p.segment("tsp_p");
    let best_seg = p.segment("tsp_best");
    let mut m = JMachine::new(p, mcfg.start(StartPolicy::AllNodes));
    let matrix = setup(&mut m, cfg);
    let cycles = m.run_until_quiescent(max_cycles)?;
    let finished = m.read_word(NodeId(0), param.base + 4).as_i32();
    assert_eq!(finished, 1, "tsp did not finish on {nodes} nodes");
    let best = m.read_word(NodeId(0), best_seg.base).as_i32() as u32;
    let expected = reference(&matrix, cfg.cities);
    assert_eq!(best, expected, "tsp mismatch on {nodes} nodes");
    let depth = cfg.depth_for(nodes);
    Ok(TspRun {
        best,
        depth,
        tasks: cfg.task_count(depth),
        cycles,
        stats: m.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_on_a_tiny_square() {
        // 4 cities in a cycle of cost 4.
        #[rustfmt::skip]
        let m = vec![
            0, 1, 9, 1,
            1, 0, 1, 9,
            9, 1, 0, 1,
            1, 9, 1, 0,
        ];
        assert_eq!(reference(&m, 4), 4);
    }

    #[test]
    fn solves_small_instances() {
        let cfg = TspConfig {
            cities: 7,
            seed: 42,
            task_depth: None,
            yield_every: 16,
        };
        for nodes in [1u32, 4, 8] {
            let r = run(nodes, &cfg, 500_000_000).unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
            assert!(r.best > 0);
        }
    }

    #[test]
    fn xlates_dominate_like_cst() {
        let cfg = TspConfig {
            cities: 7,
            seed: 42,
            task_depth: None,
            yield_every: 16,
        };
        let r = run(4, &cfg, 500_000_000).unwrap();
        // One xlate per expansion: xlates should be plentiful, with an
        // (almost) zero miss ratio — Table 5's shape.
        assert!(
            r.stats.nodes.xlates > 200,
            "{} xlates",
            r.stats.nodes.xlates
        );
        assert!(r.stats.nodes.xlate_misses * 100 < r.stats.nodes.xlates.max(1));
    }
}
