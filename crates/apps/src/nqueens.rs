//! N-Queens (paper §4.3.3).
//!
//! A graph-search problem whose central challenge is controlling explosive
//! parallelism. Following the paper: the board space is first expanded
//! breadth-first to a fixed depth, producing one task message per safe
//! prefix; tasks are spread round-robin over the machine and each performs
//! a local depth-first traversal, returning its solution count in a small
//! message (boards are 8-word messages and results 3-word messages in the
//! paper's Table 4). All work is generated up-front, so load imbalance
//! shows up as idle time (15% at 64 nodes in the paper) — task messages
//! simply wait in the hardware message queue, whose limited capacity §4.3.3
//! discusses at length.
//!
//! Node 0 expands twice: a counting pass (so the expected task count is
//! known before any result can arrive) and a sending pass.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, MachineStats, StartPolicy};
use jm_runtime::nnr;

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NqConfig {
    /// Board size (the paper runs 13; the simulator default is smaller).
    pub n: u32,
    /// Breadth-first expansion depth; `None` picks the smallest depth that
    /// yields at least three tasks per node.
    pub expand_depth: Option<u32>,
}

impl NqConfig {
    /// The paper's 13-queens problem.
    pub fn paper() -> NqConfig {
        NqConfig {
            n: 13,
            expand_depth: None,
        }
    }

    /// A scaled problem with the same structure.
    pub fn scaled() -> NqConfig {
        NqConfig {
            n: 9,
            expand_depth: None,
        }
    }

    /// Resolves the expansion depth for a machine size.
    pub fn depth_for(&self, nodes: u32) -> u32 {
        if let Some(d) = self.expand_depth {
            return d.clamp(1, (self.n - 1).max(1));
        }
        for d in 1..self.n {
            if prefix_count(self.n, d) >= 3 * u64::from(nodes) {
                return d;
            }
        }
        (self.n - 1).max(1)
    }
}

/// Host reference: number of solutions to n-queens.
pub fn reference(n: u32) -> u64 {
    fn go(n: u32, row: u32, cols: u32, d1: u32, d2: u32) -> u64 {
        if row == n {
            return 1;
        }
        let mut count = 0;
        let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            count += go(n, row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
        }
        count
    }
    go(n, 0, 0, 0, 0)
}

/// Number of safe placements of the first `depth` rows (task count).
pub fn prefix_count(n: u32, depth: u32) -> u64 {
    fn go(n: u32, row: u32, depth: u32, cols: u32, d1: u32, d2: u32) -> u64 {
        if row == depth {
            return 1;
        }
        let mut count = 0;
        let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            count += go(
                n,
                row + 1,
                depth,
                cols | bit,
                (d1 | bit) << 1,
                (d2 | bit) >> 1,
            );
        }
        count
    }
    go(n, 0, depth, 0, 0, 0)
}

// nq_p layout: [0] mode (0 count / 1 send), [1] task counter, [2] done,
// [3] total, [4] expected, [5] worker solution count, [6] finished flag,
// [7] saved row, [8] unused, [9] expansion return link.

/// Builds the SPMD n-queens program for `nodes` nodes.
///
/// # Panics
///
/// Panics if the board size is outside 2..=16 or the expansion depth is
/// infeasible.
pub fn program(cfg: &NqConfig, nodes: u32) -> Program {
    let n = cfg.n as i32;
    let d = cfg.depth_for(nodes) as i32;
    assert!((2..=16).contains(&n), "board size out of range");
    assert!(d >= 1 && d < n, "bad expansion depth {d} for n={n}");
    let task_len = (2 + d) as u32; // hdr, depth, d columns

    let mut b = Builder::new();
    b.data("nq_p", Region::Imem, vec![Word::int(0); 10]);
    b.reserve("nq_cols", Region::Imem, cfg.n + 1); // worker DFS placements
    b.reserve("nq_ecols", Region::Imem, cfg.n + 1); // expansion placements

    // ------------- node 0 background: two-pass expansion -------------
    b.label("main");
    b.load_seg(A0, "nq_p");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(MemRef::disp(A0, 1), 0);
    b.call("nq_expand");
    b.load_seg(A0, "nq_p");
    b.mov(R0, MemRef::disp(A0, 1));
    b.mov(MemRef::disp(A0, 4), R0); // expected tasks
    b.mov(MemRef::disp(A0, 0), 1);
    b.mov(MemRef::disp(A0, 1), 0);
    b.call("nq_expand");
    b.suspend();

    // ------------- expansion: DFS over rows 0..d -------------
    // R0 = row, R1 = trial column, R2/R3 scratch; A0 = nq_p, A1 = nq_ecols.
    b.label("nq_expand");
    b.load_seg(A0, "nq_p");
    b.mov(MemRef::disp(A0, 9), R3);
    b.load_seg(A1, "nq_ecols");
    b.movi(R0, 0);
    b.mov(MemRef::disp(A1, 0), -1);
    b.label("exp_try");
    b.mov(R1, MemRef::reg(A1, R0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::reg(A1, R0), R1);
    b.alu(AluOp::Eq, R2, R1, n);
    b.bt(R2, "exp_back");
    b.movi(R2, 0);
    b.label("exp_safe");
    b.alu(AluOp::Eq, R3, R2, R0);
    b.bt(R3, "exp_place");
    b.mov(R3, MemRef::reg(A1, R2));
    b.alu(AluOp::Sub, R3, R3, R1);
    b.bz(R3, "exp_try");
    b.alu(AluOp::Add, R3, R3, R2);
    b.alu(AluOp::Eq, R3, R3, R0);
    b.bt(R3, "exp_try");
    b.mov(R3, MemRef::reg(A1, R2));
    b.alu(AluOp::Sub, R3, R1, R3);
    b.alu(AluOp::Add, R3, R3, R2);
    b.alu(AluOp::Eq, R3, R3, R0);
    b.bt(R3, "exp_try");
    b.addi(R2, R2, 1);
    b.br("exp_safe");
    b.label("exp_place");
    b.alu(AluOp::Add, R2, R0, 1);
    b.alu(AluOp::Eq, R3, R2, d);
    b.bt(R3, "exp_emit");
    b.mov(R0, R2);
    b.mov(MemRef::reg(A1, R0), -1);
    b.br("exp_try");
    b.label("exp_back");
    b.subi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, 0);
    b.bt(R2, "exp_done");
    b.br("exp_try");
    b.label("exp_done");
    b.jmp(MemRef::disp(A0, 9));

    // A full prefix: count it, or send it as a task.
    b.label("exp_emit");
    b.mov(R2, MemRef::disp(A0, 0));
    b.bnz(R2, "exp_send");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 1), R2);
    b.br("exp_try");
    b.label("exp_send");
    // Ownership filter: every node enumerates the full prefix space but
    // self-posts only its share (task index mod N == NID) — even static
    // distribution without a single-node scatter bottleneck.
    b.mov(R2, MemRef::disp(A0, 1));
    b.alu(AluOp::Rem, R2, R2, Special::NNodes);
    b.alu(AluOp::Eq, R2, R2, Special::Nid);
    b.bf(R2, "exp_count");
    b.mark(StatClass::Comm);
    b.send(P0, Special::Nnr);
    b.send2(P0, hdr("nq_task", task_len), d);
    for i in 0..d as u32 {
        let src = MemRef::disp(A1, i);
        if i + 1 == d as u32 {
            b.sende(P0, src);
        } else {
            b.send(P0, src);
        }
    }
    b.mark(StatClass::Compute);
    b.label("exp_count");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 1), R2);
    b.br("exp_try");

    // ------------- worker: [hdr, depth, c0..c_{d-1}] -------------
    b.label("nq_task");
    b.load_seg(A0, "nq_p");
    b.load_seg(A1, "nq_cols");
    b.mov(MemRef::disp(A0, 5), 0); // solutions = 0
                                   // Copy the prefix into the placement array.
    b.movi(R0, 0);
    b.label("nqt_copy");
    b.addi(R1, R0, 2);
    b.mov(R2, MemRef::reg(A3, R1));
    b.mov(MemRef::reg(A1, R0), R2);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, d);
    b.bt(R2, "nqt_copy");
    // R0 = row = d; start searching.
    b.mov(MemRef::reg(A1, R0), -1);
    b.label("dfs_try");
    b.mov(R1, MemRef::reg(A1, R0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::reg(A1, R0), R1);
    b.alu(AluOp::Eq, R2, R1, n);
    b.bt(R2, "dfs_back");
    b.movi(R2, 0);
    b.label("dfs_safe");
    b.alu(AluOp::Eq, R3, R2, R0);
    b.bt(R3, "dfs_place");
    b.mov(R3, MemRef::reg(A1, R2));
    b.alu(AluOp::Sub, R3, R3, R1);
    b.bz(R3, "dfs_try");
    b.alu(AluOp::Add, R3, R3, R2);
    b.alu(AluOp::Eq, R3, R3, R0);
    b.bt(R3, "dfs_try");
    b.mov(R3, MemRef::reg(A1, R2));
    b.alu(AluOp::Sub, R3, R1, R3);
    b.alu(AluOp::Add, R3, R3, R2);
    b.alu(AluOp::Eq, R3, R3, R0);
    b.bt(R3, "dfs_try");
    b.addi(R2, R2, 1);
    b.br("dfs_safe");
    b.label("dfs_place");
    b.alu(AluOp::Add, R2, R0, 1);
    b.alu(AluOp::Eq, R3, R2, n);
    b.bf(R3, "dfs_deeper");
    b.mov(R3, MemRef::disp(A0, 5));
    b.addi(R3, R3, 1);
    b.mov(MemRef::disp(A0, 5), R3);
    b.br("dfs_try");
    b.label("dfs_deeper");
    b.mov(R0, R2);
    b.mov(MemRef::reg(A1, R0), -1);
    b.br("dfs_try");
    b.label("dfs_back");
    b.subi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, d);
    b.bt(R2, "dfs_done");
    b.br("dfs_try");
    b.label("dfs_done");
    // Report to node 0 ("NQDone": 3 words in the paper).
    b.mark(StatClass::Comm);
    b.send(P0, RouteWord::new(Coord::new(0, 0, 0)).to_word());
    b.send2(P0, hdr("nq_done", 3), MemRef::disp(A0, 5));
    b.sende(P0, Special::Nid);
    b.suspend();

    // ------------- accumulator on node 0: [hdr, count, src] -------------
    b.label("nq_done");
    b.load_seg(A0, "nq_p");
    b.mov(R0, MemRef::disp(A3, 1));
    b.mov(R1, MemRef::disp(A0, 3));
    b.alu(AluOp::Add, R1, R1, R0);
    b.mov(MemRef::disp(A0, 3), R1);
    b.mov(R1, MemRef::disp(A0, 2));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 2), R1);
    b.alu(AluOp::Eq, R2, R1, MemRef::disp(A0, 4));
    b.bf(R2, "nqd_end");
    b.mov(MemRef::disp(A0, 6), 1);
    b.label("nqd_end");
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    b.assemble().expect("nqueens assembles")
}

/// Result of a validated run.
#[derive(Debug, Clone)]
pub struct NqRun {
    /// Number of solutions found (already validated).
    pub solutions: u64,
    /// Expansion depth used.
    pub depth: u32,
    /// Number of tasks generated.
    pub tasks: u64,
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: MachineStats,
}

/// Builds, runs, and validates n-queens on `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the solution count differs from the host reference.
pub fn run(nodes: u32, cfg: &NqConfig, max_cycles: u64) -> Result<NqRun, MachineError> {
    run_on(MachineConfig::new(nodes), cfg, max_cycles)
}

/// [`run`] on an explicit machine configuration (engine, fault plan,
/// mesh shape). The node count comes from `mcfg`; the start policy is
/// forced to [`StartPolicy::AllNodes`], which the app requires.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the solution count differs from the host reference.
pub fn run_on(mcfg: MachineConfig, cfg: &NqConfig, max_cycles: u64) -> Result<NqRun, MachineError> {
    let nodes = mcfg.nodes();
    let p = program(cfg, nodes);
    let param = p.segment("nq_p");
    let mut m = JMachine::new(p, mcfg.start(StartPolicy::AllNodes));
    let cycles = m.run_until_quiescent(max_cycles)?;
    let total = m.read_word(NodeId(0), param.base + 3).as_i32() as u64;
    let finished = m.read_word(NodeId(0), param.base + 6).as_i32();
    let tasks = m.read_word(NodeId(0), param.base + 4).as_i32() as u64;
    assert_eq!(finished, 1, "n-queens did not finish");
    let expected = reference(cfg.n);
    assert_eq!(total, expected, "n-queens mismatch on {nodes} nodes");
    Ok(NqRun {
        solutions: total,
        depth: cfg.depth_for(nodes),
        tasks,
        cycles,
        stats: m.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_counts() {
        assert_eq!(reference(4), 2);
        assert_eq!(reference(6), 4);
        assert_eq!(reference(8), 92);
        assert_eq!(reference(10), 724);
    }

    #[test]
    fn prefix_counts_grow_with_depth() {
        assert_eq!(prefix_count(8, 1), 8);
        assert!(prefix_count(8, 2) > 8);
        assert_eq!(prefix_count(8, 8), 92);
    }

    #[test]
    fn solves_on_machines() {
        let cfg = NqConfig {
            n: 6,
            expand_depth: None,
        };
        for nodes in [1u32, 4, 8] {
            let run =
                run(nodes, &cfg, 100_000_000).unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
            assert_eq!(run.solutions, 4);
            assert!(run.tasks >= 3);
        }
    }

    #[test]
    fn eight_queens_parallel() {
        let cfg = NqConfig {
            n: 8,
            expand_depth: Some(2),
        };
        let run = run(4, &cfg, 200_000_000).unwrap();
        assert_eq!(run.solutions, 92);
        assert_eq!(run.tasks, prefix_count(8, 2));
    }
}
