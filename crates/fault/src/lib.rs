//! Deterministic, seeded fault injection.
//!
//! A [`FaultSpec`] describes *what* can go wrong — scheduled outage windows
//! (link-down, router-stall, node-down), a per-link flaky probability, and a
//! per-word ejection corruption probability — and a [`FaultPlan`] answers
//! *whether* a given fault fires, as a pure function of
//! `(seed, node, port, cycle)`. Nothing here keeps mutable state, so every
//! engine (Naive, Event, Parallel with any thread count) asking the same
//! question at the same cycle gets the same answer: fault injection is
//! schedule-independent by construction.
//!
//! Two fault classes exist on purpose:
//!
//! * **Delay faults** ([`FaultPlan::blocked`], [`FaultPlan::node_down`])
//!   never lose data. The network treats a faulted channel exactly like a
//!   channel with no buffer space, so wormhole backpressure holds the
//!   message in place until the fault clears. Programs that are correct
//!   under congestion are correct under delay faults.
//! * **Corruption faults** ([`FaultPlan::corrupt_bit`]) flip one payload
//!   bit at the ejection port. With [`FaultSpec::checksums`] enabled the
//!   MDP validates a trailing checksum word at dispatch and *drops* the
//!   damaged message (counting `FaultKind::CorruptMessage`) — loss is
//!   detected, never silent. Recovery is the runtime's job (idempotent
//!   sequence-numbered RPC resend, see `jm-runtime`).

use jm_isa::word::Word;
use jm_prng::Prng;

/// Output-port index of the ejection (local delivery) port. Mirrors
/// `jm-net`'s port numbering: 0–5 are the six mesh directions.
pub const EJECT_PORT: usize = 6;

/// Maximum number of scheduled outage windows in one spec.
pub const MAX_WINDOWS: usize = 8;

/// Denominator for the probabilistic fault rates (parts per million).
pub const PPM: u64 = 1_000_000;

const SALT_FLAKY: u64 = 0x666c_616b_795f_6c6e; // "flaky_ln"
const SALT_CORRUPT: u64 = 0x636f_7272_7570_7431; // "corrupt1"

/// What a scheduled outage window does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindowKind {
    /// One output channel of one router is down: nothing crosses it.
    LinkDown,
    /// A whole router stalls: no flit leaves any of its output ports
    /// (ejection included). Traffic queues upstream.
    RouterStall,
    /// A node's network interface is down: its sends stall (the MDP sees a
    /// send fault and retries) and nothing ejects into it.
    NodeDown,
}

/// One scheduled outage: `kind` at `node` during cycles `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// What stops working.
    pub kind: FaultWindowKind,
    /// Global node id the window applies to.
    pub node: u32,
    /// Output-port index (0–5); only meaningful for [`FaultWindowKind::LinkDown`].
    pub port: u8,
    /// First faulty cycle.
    pub from: u64,
    /// First healthy cycle again (exclusive bound).
    pub until: u64,
}

impl FaultWindow {
    const NONE: FaultWindow = FaultWindow {
        kind: FaultWindowKind::LinkDown,
        node: 0,
        port: 0,
        from: 0,
        until: 0,
    };

    /// A link-down window on `node`'s output `port` (0–5).
    pub fn link_down(node: u32, port: u8, from: u64, until: u64) -> FaultWindow {
        assert!(
            (port as usize) < EJECT_PORT,
            "link port out of range: {port}"
        );
        FaultWindow {
            kind: FaultWindowKind::LinkDown,
            node,
            port,
            from,
            until,
        }
    }

    /// A router-stall window on `node`.
    pub fn router_stall(node: u32, from: u64, until: u64) -> FaultWindow {
        FaultWindow {
            kind: FaultWindowKind::RouterStall,
            node,
            port: 0,
            from,
            until,
        }
    }

    /// A node-down (network-interface outage) window on `node`.
    pub fn node_down(node: u32, from: u64, until: u64) -> FaultWindow {
        FaultWindow {
            kind: FaultWindowKind::NodeDown,
            node,
            port: 0,
            from,
            until,
        }
    }

    #[inline]
    fn active(&self, cycle: u64) -> bool {
        cycle >= self.from && cycle < self.until
    }
}

/// A complete, copyable description of a fault campaign.
///
/// `FaultSpec` is plain data (`Copy + Eq`) so it can ride inside
/// `MachineConfig` without breaking its value semantics. An all-defaults
/// spec is *vacuous* — [`FaultPlan::from_spec`] returns `None` for it and
/// the simulator runs the exact fault-free code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Per-(link, cycle) probability that a directional channel refuses to
    /// move a flit this cycle, in parts per million. Lossless: the flit
    /// waits, exactly as if the downstream buffer were full.
    pub link_flaky_ppm: u32,
    /// Per-(node, cycle) probability that a payload word ejected this cycle
    /// has one bit flipped, in parts per million. The message header is
    /// never corrupted (framing stays intact; see `jm-net`).
    pub corrupt_ppm: u32,
    /// Append a checksum word to every injected message and validate it at
    /// dispatch, dropping (and counting) corrupt messages.
    pub checksums: bool,
    windows: [FaultWindow; MAX_WINDOWS],
    window_count: u8,
}

impl FaultSpec {
    /// An empty spec with the given seed. Vacuous until faults are added.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            link_flaky_ppm: 0,
            corrupt_ppm: 0,
            checksums: false,
            windows: [FaultWindow::NONE; MAX_WINDOWS],
            window_count: 0,
        }
    }

    /// The canonical "no faults at all" spec.
    pub fn none() -> FaultSpec {
        FaultSpec::new(0)
    }

    /// Sets the per-link flaky probability (parts per million).
    pub fn flaky(mut self, ppm: u32) -> FaultSpec {
        self.link_flaky_ppm = ppm;
        self
    }

    /// Sets the ejection corruption probability (parts per million).
    pub fn corrupt(mut self, ppm: u32) -> FaultSpec {
        self.corrupt_ppm = ppm;
        self
    }

    /// Enables or disables message checksums.
    pub fn checksums(mut self, on: bool) -> FaultSpec {
        self.checksums = on;
        self
    }

    /// Adds a scheduled outage window.
    ///
    /// # Panics
    ///
    /// Panics if the spec already holds [`MAX_WINDOWS`] windows.
    pub fn window(mut self, w: FaultWindow) -> FaultSpec {
        let i = self.window_count as usize;
        assert!(
            i < MAX_WINDOWS,
            "too many fault windows (max {MAX_WINDOWS})"
        );
        self.windows[i] = w;
        self.window_count = i as u8 + 1;
        self
    }

    /// The scheduled outage windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows[..self.window_count as usize]
    }

    /// Whether this spec can never change any simulation outcome.
    pub fn is_vacuous(&self) -> bool {
        self.window_count == 0
            && self.link_flaky_ppm == 0
            && self.corrupt_ppm == 0
            && !self.checksums
    }
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec::none()
    }
}

/// A compiled fault plan: the queryable form of a non-vacuous [`FaultSpec`].
///
/// Every query is a pure function of its arguments and the spec, keyed by
/// *global* node id so the answer cannot depend on how the mesh is sharded
/// across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Compiles a spec; `None` when the spec is vacuous, so callers keep
    /// the exact fault-free fast path (`Option` test only).
    pub fn from_spec(spec: FaultSpec) -> Option<FaultPlan> {
        if spec.is_vacuous() {
            None
        } else {
            Some(FaultPlan { spec })
        }
    }

    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether messages carry a validation checksum.
    #[inline]
    pub fn checksums(&self) -> bool {
        self.spec.checksums
    }

    /// One seeded draw per decision point. `Prng` is SplitMix64, so a
    /// single `next_u64` fully avalanches the key.
    #[inline]
    fn draw(&self, salt: u64, node: u32, port: u32, cycle: u64) -> u64 {
        let key = self.spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt
            ^ u64::from(node).wrapping_mul(0xd134_2543_de82_ef95)
            ^ u64::from(port).wrapping_mul(0xaf25_1af3_b0f0_25b5)
            ^ cycle.wrapping_mul(0x2545_f491_4f6c_dd1d);
        Prng::new(key).next_u64()
    }

    /// Whether `node`'s output `out_port` refuses to move a flit at
    /// `cycle`. Lossless: callers must treat `true` exactly like "no
    /// downstream space" (the flit stays queued).
    pub fn blocked(&self, node: u32, out_port: usize, cycle: u64) -> bool {
        for w in self.spec.windows() {
            if !w.active(cycle) || w.node != node {
                continue;
            }
            match w.kind {
                FaultWindowKind::LinkDown => {
                    if usize::from(w.port) == out_port {
                        return true;
                    }
                }
                FaultWindowKind::RouterStall => return true,
                FaultWindowKind::NodeDown => {
                    if out_port == EJECT_PORT {
                        return true;
                    }
                }
            }
        }
        self.spec.link_flaky_ppm != 0
            && out_port != EJECT_PORT
            && self.draw(SALT_FLAKY, node, out_port as u32, cycle) % PPM
                < u64::from(self.spec.link_flaky_ppm)
    }

    /// Whether `node`'s network interface is down at `cycle` (sends must
    /// stall at the injection port).
    pub fn node_down(&self, node: u32, cycle: u64) -> bool {
        self.spec
            .windows()
            .iter()
            .any(|w| w.kind == FaultWindowKind::NodeDown && w.node == node && w.active(cycle))
    }

    /// If a payload word ejected at `node` this `cycle` gets corrupted,
    /// returns the bit index (0–31) to flip.
    #[inline]
    pub fn corrupt_bit(&self, node: u32, cycle: u64) -> Option<u32> {
        if self.spec.corrupt_ppm == 0 {
            return None;
        }
        let d = self.draw(SALT_CORRUPT, node, EJECT_PORT as u32, cycle);
        if d % PPM < u64::from(self.spec.corrupt_ppm) {
            Some(((d >> 32) % 32) as u32)
        } else {
            None
        }
    }
}

/// Initial accumulator for the message checksum fold.
pub const CHECKSUM_INIT: u32 = 0x811c_9dc5;

/// Folds one word (tag and payload bits) into a checksum accumulator.
/// FNV-1a-style so a single flipped bit anywhere changes the result.
#[inline]
pub fn checksum_fold(acc: u32, w: Word) -> u32 {
    let acc = (acc ^ w.tag() as u32).wrapping_mul(0x0100_0193);
    (acc ^ w.bits()).wrapping_mul(0x0100_0193)
}

/// Checksum word over a message's payload words (header first, route word
/// excluded). Carried as an `Int`-tagged trailer word on the wire.
pub fn checksum_words(words: &[Word]) -> Word {
    let acc = words
        .iter()
        .fold(CHECKSUM_INIT, |a, &w| checksum_fold(a, w));
    Word::new(jm_isa::tag::Tag::Int, acc)
}

/// Network-side fault-injection counters, carried inside `NetStats` and
/// merged through the same fixed-order reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Flit moves refused by a delay fault (windows or flaky links).
    pub blocked_moves: u64,
    /// Injections refused because the sending node's interface was down.
    pub inject_stalls: u64,
    /// Payload words corrupted at an ejection port.
    pub corrupted_words: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self` (plain sums; order-independent, but
    /// callers fold in fixed shard order anyway).
    pub fn merge(&mut self, other: &FaultStats) {
        self.blocked_moves += other.blocked_moves;
        self.inject_stalls += other.inject_stalls;
        self.corrupted_words += other.corrupted_words;
    }

    /// Counters accumulated since `base` was captured.
    pub fn since(&self, base: &FaultStats) -> FaultStats {
        FaultStats {
            blocked_moves: self.blocked_moves - base.blocked_moves,
            inject_stalls: self.inject_stalls - base.inject_stalls,
            corrupted_words: self.corrupted_words - base.corrupted_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacuous_specs_compile_to_none() {
        assert!(FaultPlan::from_spec(FaultSpec::none()).is_none());
        assert!(FaultPlan::from_spec(FaultSpec::new(1234)).is_none());
        assert!(FaultPlan::from_spec(FaultSpec::new(7).flaky(1).flaky(0)).is_none());
        assert!(FaultPlan::from_spec(FaultSpec::new(7).flaky(1)).is_some());
        assert!(FaultPlan::from_spec(FaultSpec::new(7).checksums(true)).is_some());
        assert!(
            FaultPlan::from_spec(FaultSpec::new(7).window(FaultWindow::node_down(0, 10, 20)))
                .is_some()
        );
    }

    #[test]
    fn windows_block_exactly_their_interval() {
        let p =
            FaultPlan::from_spec(FaultSpec::new(1).window(FaultWindow::link_down(5, 2, 100, 200)))
                .unwrap();
        assert!(!p.blocked(5, 2, 99));
        assert!(p.blocked(5, 2, 100));
        assert!(p.blocked(5, 2, 199));
        assert!(!p.blocked(5, 2, 200));
        // Other ports and nodes unaffected.
        assert!(!p.blocked(5, 3, 150));
        assert!(!p.blocked(4, 2, 150));
    }

    #[test]
    fn router_stall_blocks_all_ports_and_node_down_blocks_eject() {
        let p = FaultPlan::from_spec(
            FaultSpec::new(1)
                .window(FaultWindow::router_stall(3, 0, 10))
                .window(FaultWindow::node_down(4, 0, 10)),
        )
        .unwrap();
        for port in 0..=EJECT_PORT {
            assert!(p.blocked(3, port, 5));
        }
        assert!(p.blocked(4, EJECT_PORT, 5));
        assert!(!p.blocked(4, 0, 5));
        assert!(p.node_down(4, 5));
        assert!(!p.node_down(4, 10));
        assert!(!p.node_down(3, 5));
    }

    #[test]
    fn probabilistic_draws_are_deterministic_and_near_rate() {
        let p = FaultPlan::from_spec(FaultSpec::new(42).flaky(100_000)).unwrap();
        let mut hits = 0u32;
        for cycle in 0..10_000 {
            let b = p.blocked(7, 3, cycle);
            assert_eq!(b, p.blocked(7, 3, cycle), "same query, same answer");
            hits += u32::from(b);
        }
        // 10% nominal; allow a generous band for a 10k sample.
        assert!((700..1300).contains(&hits), "hit rate off: {hits}/10000");
        // Different seed gives a different pattern.
        let q = FaultPlan::from_spec(FaultSpec::new(43).flaky(100_000)).unwrap();
        assert!((0..10_000u64).any(|c| p.blocked(7, 3, c) != q.blocked(7, 3, c)));
    }

    #[test]
    fn corrupt_bits_are_in_range_and_rate_limited() {
        let p = FaultPlan::from_spec(FaultSpec::new(9).corrupt(50_000).checksums(true)).unwrap();
        let mut hits = 0u32;
        for cycle in 0..10_000 {
            if let Some(bit) = p.corrupt_bit(2, cycle) {
                assert!(bit < 32);
                hits += 1;
            }
        }
        assert!((300..800).contains(&hits), "hit rate off: {hits}/10000");
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        use jm_isa::tag::Tag;
        let words = [
            Word::new(Tag::Msg, 0x1234),
            Word::int(7),
            Word::new(Tag::Addr, 0xbeef),
        ];
        let good = checksum_words(&words);
        for i in 0..words.len() {
            for bit in 0..32 {
                let mut bad = words;
                bad[i] = Word::new(bad[i].tag(), bad[i].bits() ^ (1 << bit));
                assert_ne!(
                    checksum_words(&bad),
                    good,
                    "missed flip at word {i} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn fault_stats_merge_and_since() {
        let mut a = FaultStats {
            blocked_moves: 1,
            inject_stalls: 2,
            corrupted_words: 3,
        };
        let b = FaultStats {
            blocked_moves: 10,
            inject_stalls: 20,
            corrupted_words: 30,
        };
        a.merge(&b);
        assert_eq!(a.blocked_moves, 11);
        assert_eq!(a.since(&b).inject_stalls, 2);
    }
}
