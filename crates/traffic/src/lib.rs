//! Deterministic, seeded synthetic traffic generation.
//!
//! A [`TrafficSpec`] describes a background workload — one of the standard
//! NoC adversarial patterns (uniform-random, transpose, bit-reversal,
//! hotspot, nearest-neighbor) driven by a Bernoulli injection process at a
//! configured offered load — and a [`TrafficPlan`] answers *whether* a node
//! sources a message this cycle and *where* it goes, as pure functions of
//! `(seed, node, cycle)`. Nothing here keeps mutable state, so every engine
//! (Naive, Event, Parallel with any thread count) asking the same question
//! at the same cycle gets the same answer: the injected workload is
//! schedule-independent by construction, exactly like `jm-fault`.
//!
//! Two design rules keep the generator honest:
//!
//! * **Offered load is in flits/node/cycle.** A message of `msg_words`
//!   payload words occupies `2 × (msg_words + 1)` flits on the wire (route
//!   word plus payload, two flits per word), so the per-cycle fire
//!   probability is `load / flits_per_msg`. Saturation curves from
//!   different message lengths are directly comparable.
//! * **Destination maps are total permutation-or-draw functions over the
//!   real mesh.** Transpose and bit-reversal act on the linear node id and
//!   clamp out-of-mesh images back to the source, which provably preserves
//!   the self-inverse (involution) property on non-power-of-two meshes;
//!   nearest-neighbor walks the first non-degenerate dimension so it stays
//!   in-mesh for any `MeshDims`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use jm_isa::node::{Coord, MeshDims, NodeId};
use jm_prng::Prng;

/// Denominator for the offered-load and hotspot-weight rates (parts per
/// million), shared with `jm-fault`'s convention.
pub const PPM: u64 = 1_000_000;

const SALT_FIRE: u64 = 0x7472_6166_6669_7265; // "traffire"
const SALT_DEST: u64 = 0x7472_6166_6465_7374; // "trafdest"
const SALT_HOTSPOT: u64 = 0x7472_6166_6873_7074; // "trafhspt"

/// Which destination map drives the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every message picks an independent uniform destination (self
    /// allowed — loopback delivery is part of the model).
    UniformRandom,
    /// Linear id with its low and high bit halves swapped (matrix
    /// transpose); a self-inverse permutation.
    Transpose,
    /// Linear id with its bits reversed; a self-inverse permutation.
    BitReversal,
    /// With probability `weight_ppm`, the mesh-center node; otherwise an
    /// independent uniform destination.
    Hotspot {
        /// Probability of targeting the hotspot node, in parts per million.
        weight_ppm: u32,
    },
    /// The +1 neighbor (wrapping) along the first non-degenerate
    /// dimension — minimal-distance streaming traffic.
    NearestNeighbor,
}

impl TrafficPattern {
    /// Short lower-case label used in reports, JSON rows, and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform_random",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitReversal => "bit_reversal",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::NearestNeighbor => "nearest_neighbor",
        }
    }
}

/// A complete, copyable description of a synthetic workload.
///
/// `TrafficSpec` is plain data (`Copy + Eq`) so it can ride inside
/// `MachineConfig` without breaking its value semantics. An all-defaults
/// spec is *vacuous* — [`TrafficPlan::from_spec`] returns `None` for it and
/// the simulator runs the exact traffic-free code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// The destination map.
    pub pattern: TrafficPattern,
    /// Offered load in flits per node per cycle, parts per million.
    pub load_ppm: u32,
    /// Payload words per message, header included (route word excluded).
    pub msg_words: u32,
    /// First cycle the generator may fire (inclusive).
    pub from: u64,
    /// First cycle past the generation window (exclusive).
    pub until: u64,
    /// Instruction address of the handler every generated message
    /// dispatches; resolved from the loaded program by the harness.
    pub handler_ip: u32,
}

impl TrafficSpec {
    /// An empty spec with the given seed. Vacuous until a load is set.
    pub fn new(seed: u64) -> TrafficSpec {
        TrafficSpec {
            seed,
            pattern: TrafficPattern::UniformRandom,
            load_ppm: 0,
            msg_words: 2,
            from: 0,
            until: u64::MAX,
            handler_ip: 0,
        }
    }

    /// The canonical "no traffic at all" spec.
    pub fn none() -> TrafficSpec {
        TrafficSpec::new(0)
    }

    /// Sets the destination map.
    pub fn pattern(mut self, pattern: TrafficPattern) -> TrafficSpec {
        self.pattern = pattern;
        self
    }

    /// Sets the offered load (flits/node/cycle, parts per million).
    pub fn load(mut self, ppm: u32) -> TrafficSpec {
        self.load_ppm = ppm;
        self
    }

    /// Sets the per-message payload length in words (header included).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero — every message needs its header word.
    pub fn msg_words(mut self, words: u32) -> TrafficSpec {
        assert!(words >= 1, "a message is at least its header word");
        self.msg_words = words;
        self
    }

    /// Restricts generation to cycles in `[from, until)`.
    pub fn window(mut self, from: u64, until: u64) -> TrafficSpec {
        self.from = from;
        self.until = until;
        self
    }

    /// Sets the handler address generated messages dispatch.
    pub fn handler(mut self, ip: u32) -> TrafficSpec {
        self.handler_ip = ip;
        self
    }

    /// Whether this spec can never inject anything.
    pub fn is_vacuous(&self) -> bool {
        self.load_ppm == 0 || self.from >= self.until
    }
}

impl Default for TrafficSpec {
    fn default() -> TrafficSpec {
        TrafficSpec::none()
    }
}

/// A compiled traffic plan: the queryable form of a non-vacuous
/// [`TrafficSpec`].
///
/// Every query is a pure function of its arguments and the spec, keyed by
/// *global* node id so the answer cannot depend on how the mesh is sharded
/// across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficPlan {
    spec: TrafficSpec,
}

impl TrafficPlan {
    /// Compiles a spec; `None` when the spec is vacuous, so callers keep
    /// the exact traffic-free fast path (`Option` test only).
    pub fn from_spec(spec: TrafficSpec) -> Option<TrafficPlan> {
        if spec.is_vacuous() {
            None
        } else {
            Some(TrafficPlan { spec })
        }
    }

    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Payload words per generated message (header included).
    #[inline]
    pub fn msg_words(&self) -> u32 {
        self.spec.msg_words
    }

    /// Handler address generated messages dispatch.
    #[inline]
    pub fn handler_ip(&self) -> u32 {
        self.spec.handler_ip
    }

    /// Wire length of one generated message in flits: route word plus
    /// payload words, two flits each.
    #[inline]
    pub fn flits_per_msg(&self) -> u64 {
        2 * (u64::from(self.spec.msg_words) + 1)
    }

    /// Whether the generator may fire at `cycle`.
    #[inline]
    pub fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.spec.from && cycle < self.spec.until
    }

    /// The next cycle at or after `cycle` with possible traffic, or
    /// `u64::MAX` when the window is exhausted. Idle-skip gating: a machine
    /// may fast-forward to (but not past) this cycle, and is quiescent only
    /// once it returns `u64::MAX`.
    #[inline]
    pub fn next_active(&self, cycle: u64) -> u64 {
        if cycle < self.spec.from {
            self.spec.from
        } else if cycle < self.spec.until {
            cycle
        } else {
            u64::MAX
        }
    }

    /// One seeded draw per decision point, mixing identically to
    /// `jm-fault` (SplitMix64 fully avalanches the key).
    #[inline]
    fn draw(&self, salt: u64, node: u32, cycle: u64) -> u64 {
        let key = self.spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt
            ^ u64::from(node).wrapping_mul(0xd134_2543_de82_ef95)
            ^ cycle.wrapping_mul(0x2545_f491_4f6c_dd1d);
        Prng::new(key).next_u64()
    }

    /// Whether `node` sources one message at `cycle`. The Bernoulli rate is
    /// `load / flits_per_msg` so the *offered flit* rate matches the spec;
    /// the comparison is exact (no rounding of the ratio).
    #[inline]
    pub fn fires(&self, node: u32, cycle: u64) -> bool {
        self.in_window(cycle)
            && self.draw(SALT_FIRE, node, cycle) % (PPM * self.flits_per_msg())
                < u64::from(self.spec.load_ppm)
    }

    /// Destination of the message `node` sources at `cycle`.
    pub fn dest(&self, node: u32, cycle: u64, dims: MeshDims) -> NodeId {
        let nodes = dims.nodes();
        match self.spec.pattern {
            TrafficPattern::UniformRandom => uniform_pick(self.draw(SALT_DEST, node, cycle), nodes),
            TrafficPattern::Transpose => transpose_dest(node, nodes),
            TrafficPattern::BitReversal => bit_reversal_dest(node, nodes),
            TrafficPattern::Hotspot { weight_ppm } => {
                if self.draw(SALT_HOTSPOT, node, cycle) % PPM < u64::from(weight_ppm) {
                    hotspot_center(dims)
                } else {
                    uniform_pick(self.draw(SALT_DEST, node, cycle), nodes)
                }
            }
            TrafficPattern::NearestNeighbor => nearest_neighbor_dest(node, dims),
        }
    }
}

/// Uniform pick in `[0, nodes)` from one 64-bit draw (widening multiply —
/// same exact reduction `jm-prng` uses for ranges).
#[inline]
fn uniform_pick(draw: u64, nodes: u32) -> NodeId {
    NodeId(((u128::from(draw) * u128::from(nodes)) >> 64) as u32)
}

/// Bits needed to index `nodes` ids (0 for a single node).
#[inline]
fn id_bits(nodes: u32) -> u32 {
    if nodes <= 1 {
        0
    } else {
        32 - (nodes - 1).leading_zeros()
    }
}

/// The fixed hotspot destination: the mesh-center node.
pub fn hotspot_center(dims: MeshDims) -> NodeId {
    dims.id(Coord::new(dims.x / 2, dims.y / 2, dims.z / 2))
}

/// Bit-reversal destination map over linear node ids: reverse the
/// `ceil(log2(nodes))` id bits, clamping out-of-mesh images back to the
/// source. The clamp preserves the involution: if the reversed image is
/// in-mesh its own reversal is the original id, and clamped ids map to
/// themselves.
pub fn bit_reversal_dest(node: u32, nodes: u32) -> NodeId {
    let bits = id_bits(nodes);
    if bits == 0 {
        return NodeId(node);
    }
    let image = node.reverse_bits() >> (32 - bits);
    NodeId(if image < nodes { image } else { node })
}

/// Transpose destination map over linear node ids: swap the low and high
/// halves of the `ceil(log2(nodes))` id bits (the middle bit is fixed when
/// the width is odd), clamping out-of-mesh images back to the source. The
/// half-swap is its own inverse, so the same clamp argument as
/// [`bit_reversal_dest`] makes this a self-inverse permutation.
pub fn transpose_dest(node: u32, nodes: u32) -> NodeId {
    let bits = id_bits(nodes);
    let half = bits / 2;
    if half == 0 {
        return NodeId(node);
    }
    let low_mask = (1u32 << half) - 1;
    let low = node & low_mask;
    let high = (node >> (bits - half)) & low_mask;
    let middle = node & !(low_mask | (low_mask << (bits - half)));
    let image = (low << (bits - half)) | middle | high;
    NodeId(if image < nodes { image } else { node })
}

/// Nearest-neighbor destination map: the +1 neighbor (wrapping) along the
/// first dimension with extent > 1, so the image is always in-mesh; a node
/// of a 1×1×1 mesh targets itself.
pub fn nearest_neighbor_dest(node: u32, dims: MeshDims) -> NodeId {
    let mut c = dims.coord(NodeId(node));
    if dims.x > 1 {
        c.x = (c.x + 1) % dims.x;
    } else if dims.y > 1 {
        c.y = (c.y + 1) % dims.y;
    } else if dims.z > 1 {
        c.z = (c.z + 1) % dims.z;
    }
    dims.id(c)
}

/// Network-side traffic-generation counters, carried inside `NetStats` and
/// merged through the same fixed-order reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages the generator offered to injection ports.
    pub offered_msgs: u64,
    /// Offered messages accepted into an injection FIFO.
    pub accepted_msgs: u64,
    /// Offered messages refused (FIFO backpressure or a node-down fault);
    /// the Bernoulli process does not retry, so these are dropped.
    pub dropped_msgs: u64,
}

impl TrafficStats {
    /// Accumulates `other` into `self` (plain sums; order-independent, but
    /// callers fold in fixed shard order anyway).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.offered_msgs += other.offered_msgs;
        self.accepted_msgs += other.accepted_msgs;
        self.dropped_msgs += other.dropped_msgs;
    }

    /// Counters accumulated since `base` was captured.
    pub fn since(&self, base: &TrafficStats) -> TrafficStats {
        TrafficStats {
            offered_msgs: self.offered_msgs - base.offered_msgs,
            accepted_msgs: self.accepted_msgs - base.accepted_msgs,
            dropped_msgs: self.dropped_msgs - base.dropped_msgs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: &[(u8, u8, u8)] = &[
        (4, 4, 4),
        (2, 3, 5),
        (8, 8, 1),
        (1, 1, 7),
        (5, 5, 5),
        (2, 2, 8),
        (1, 1, 1),
    ];

    #[test]
    fn vacuous_specs_compile_to_none() {
        assert!(TrafficPlan::from_spec(TrafficSpec::none()).is_none());
        assert!(TrafficPlan::from_spec(TrafficSpec::new(1234)).is_none());
        assert!(TrafficPlan::from_spec(TrafficSpec::new(7).load(100_000).load(0)).is_none());
        assert!(TrafficPlan::from_spec(TrafficSpec::new(7).load(1).window(50, 50)).is_none());
        assert!(TrafficPlan::from_spec(TrafficSpec::new(7).load(1).window(60, 50)).is_none());
        assert!(TrafficPlan::from_spec(TrafficSpec::new(7).load(1)).is_some());
    }

    #[test]
    fn transpose_and_bit_reversal_are_self_inverse_permutations() {
        for &(x, y, z) in DIMS {
            let n = MeshDims::new(x, y, z).nodes();
            for map in [transpose_dest, bit_reversal_dest] {
                let mut hit = vec![false; n as usize];
                for i in 0..n {
                    let j = map(i, n).0;
                    assert!(j < n, "{x}x{y}x{z}: image {j} of {i} out of mesh");
                    assert_eq!(map(j, n).0, i, "{x}x{y}x{z}: not an involution at {i}");
                    hit[j as usize] = true;
                }
                // An involution into the set is automatically a bijection;
                // check anyway so a clamp bug fails loudly.
                assert!(hit.iter().all(|&h| h), "{x}x{y}x{z}: not a permutation");
            }
        }
    }

    #[test]
    fn transpose_moves_ids_on_power_of_two_meshes() {
        // 64 ids = 6 bits: transpose swaps 3-bit halves, bit-reversal
        // mirrors. Spot-check known images so the maps are not identity.
        assert_eq!(transpose_dest(1, 64).0, 8);
        assert_eq!(transpose_dest(0o70, 64).0, 0o07);
        assert_eq!(bit_reversal_dest(1, 64).0, 32);
        assert_eq!(bit_reversal_dest(3, 64).0, 48);
    }

    #[test]
    fn nearest_neighbor_stays_in_mesh_for_edge_and_corner_nodes() {
        for &(x, y, z) in DIMS {
            let dims = MeshDims::new(x, y, z);
            for i in 0..dims.nodes() {
                let d = nearest_neighbor_dest(i, dims);
                assert!(d.0 < dims.nodes(), "{dims}: {i} -> {d} out of mesh");
                if dims.nodes() > 1 {
                    assert_ne!(d.0, i, "{dims}: {i} targets itself");
                    let hops = dims.coord(NodeId(i)).hops_to(dims.coord(d));
                    // +1 with wraparound: one hop, except the wrap step
                    // which e-cube routes as extent-1 hops.
                    let extent = if dims.x > 1 {
                        dims.x
                    } else if dims.y > 1 {
                        dims.y
                    } else {
                        dims.z
                    };
                    assert!(
                        hops == 1 || hops == u32::from(extent) - 1,
                        "{dims}: {i} -> {d} is {hops} hops"
                    );
                }
            }
        }
    }

    #[test]
    fn hotspot_weight_matches_spec_within_deterministic_bounds() {
        let dims = MeshDims::new(4, 4, 4);
        let plan = TrafficPlan::from_spec(
            TrafficSpec::new(11)
                .pattern(TrafficPattern::Hotspot {
                    weight_ppm: 250_000,
                })
                .load(100_000),
        )
        .unwrap();
        let center = hotspot_center(dims);
        assert_eq!(center, dims.id(Coord::new(2, 2, 2)));
        let mut center_hits = 0u32;
        let mut spread = vec![0u32; dims.nodes() as usize];
        let samples = 10_000u64;
        for cycle in 0..samples {
            let d = plan.dest(5, cycle, dims);
            spread[d.index()] += 1;
            if d == center {
                center_hits += 1;
            }
        }
        // 25% weight plus ~1/64 uniform fallback ≈ 26.2%; generous band.
        assert!(
            (2200..3100).contains(&center_hits),
            "hotspot rate off: {center_hits}/{samples}"
        );
        // The non-hotspot mass actually spreads over the mesh.
        let covered = spread.iter().filter(|&&c| c > 0).count();
        assert_eq!(covered, 64, "uniform fallback missed nodes");
    }

    #[test]
    fn uniform_destinations_cover_the_mesh() {
        let dims = MeshDims::new(2, 3, 5);
        let plan = TrafficPlan::from_spec(TrafficSpec::new(3).load(1)).unwrap();
        let mut seen = vec![false; dims.nodes() as usize];
        for cycle in 0..2_000 {
            seen[plan.dest(0, cycle, dims).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed nodes");
    }

    #[test]
    fn fire_rate_tracks_offered_load() {
        // 0.40 flits/node/cycle over 6-flit messages = 1/15 msgs/cycle.
        let plan = TrafficPlan::from_spec(TrafficSpec::new(42).load(400_000).msg_words(2)).unwrap();
        assert_eq!(plan.flits_per_msg(), 6);
        let mut fires = 0u32;
        for cycle in 0..30_000 {
            let f = plan.fires(9, cycle);
            assert_eq!(f, plan.fires(9, cycle), "same query, same answer");
            fires += u32::from(f);
        }
        // 2000 expected; generous deterministic band.
        assert!(
            (1700..2300).contains(&fires),
            "fire rate off: {fires}/30000"
        );
        // Different seed gives a different firing pattern.
        let other =
            TrafficPlan::from_spec(TrafficSpec::new(43).load(400_000).msg_words(2)).unwrap();
        assert!((0..30_000u64).any(|c| plan.fires(9, c) != other.fires(9, c)));
    }

    #[test]
    fn window_gates_firing_and_next_active() {
        let plan =
            TrafficPlan::from_spec(TrafficSpec::new(1).load(PPM as u32).window(100, 200)).unwrap();
        assert!(!plan.fires(0, 99));
        assert!((100..200u64).any(|c| plan.fires(0, c)));
        assert!(!plan.fires(0, 200));
        assert_eq!(plan.next_active(0), 100);
        assert_eq!(plan.next_active(100), 100);
        assert_eq!(plan.next_active(150), 150);
        assert_eq!(plan.next_active(199), 199);
        assert_eq!(plan.next_active(200), u64::MAX);
    }

    #[test]
    fn traffic_stats_merge_and_since() {
        let mut a = TrafficStats {
            offered_msgs: 3,
            accepted_msgs: 2,
            dropped_msgs: 1,
        };
        let b = TrafficStats {
            offered_msgs: 30,
            accepted_msgs: 20,
            dropped_msgs: 10,
        };
        a.merge(&b);
        assert_eq!(a.offered_msgs, 33);
        assert_eq!(a.since(&b).accepted_msgs, 2);
    }
}
