//! The programmatic assembler: emit instructions with symbolic references,
//! then [`Builder::assemble`] into a resolved [`Program`].

use crate::error::AsmError;
use crate::program::{DataBlock, Program, SymbolTable, SymbolValue};
use jm_isa::consts::{EMEM_BASE, MEM_WORDS, VECTOR_COUNT};
use jm_isa::encode::footprint_words;
use jm_isa::instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority, StatClass};
use jm_isa::operand::{Dst, Src};
use jm_isa::reg::{AReg, DReg};
use jm_isa::tag::Tag;
use jm_isa::word::{MsgHeader, Word};
use std::collections::HashMap;

/// Which memory a data block is placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// On-chip SRAM (fast: 1-cycle operand access).
    Imem,
    /// External DRAM (slow: 6-cycle operand access).
    Emem,
}

/// A pending immediate expression, resolved at assembly time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PExpr {
    /// The `ip` word of a code label.
    LabelIp(String),
    /// A message header word: handler label + total length.
    MsgHdr(String, u32),
    /// The `addr` word (segment descriptor) of a data block.
    Seg(String),
    /// The base address of a data block, as an `int`.
    SegBase(String),
    /// The length of a data block, as an `int`.
    SegLen(String),
    /// A named constant bound with [`Builder::equ`].
    Const(String),
}

/// A source operand that may reference an unresolved symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PSrc {
    ready: Src,
    pending: Option<PExpr>,
}

impl PSrc {
    fn pending(expr: PExpr) -> PSrc {
        // Placeholder with a full-width tagged immediate so the encoded
        // footprint is identical before and after resolution.
        PSrc {
            ready: Src::Imm(Word::new(Tag::Ip, u32::MAX)),
            pending: Some(expr),
        }
    }
}

macro_rules! psrc_from {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for PSrc {
            fn from(value: $ty) -> PSrc {
                PSrc {
                    ready: value.into(),
                    pending: None,
                }
            }
        })*
    };
}

psrc_from!(Src, DReg, AReg, Word, i32, jm_isa::operand::MemRef,);

impl From<jm_isa::operand::Special> for PSrc {
    fn from(value: jm_isa::operand::Special) -> PSrc {
        PSrc {
            ready: Src::Sp(value),
            pending: None,
        }
    }
}

/// Pending operand: the `ip` word of code label `name`.
pub fn lab(name: impl Into<String>) -> PSrc {
    PSrc::pending(PExpr::LabelIp(name.into()))
}

/// Pending operand: a message header invoking `handler` with total message
/// length `len` words (header included).
pub fn hdr(handler: impl Into<String>, len: u32) -> PSrc {
    PSrc::pending(PExpr::MsgHdr(handler.into(), len))
}

/// Pending operand: the segment descriptor of data block `name`.
pub fn seg(name: impl Into<String>) -> PSrc {
    PSrc::pending(PExpr::Seg(name.into()))
}

/// Pending operand: the base address of data block `name` as an `int`.
pub fn seg_base(name: impl Into<String>) -> PSrc {
    PSrc::pending(PExpr::SegBase(name.into()))
}

/// Pending operand: the length of data block `name` as an `int`.
pub fn seg_len(name: impl Into<String>) -> PSrc {
    PSrc::pending(PExpr::SegLen(name.into()))
}

/// Pending operand: the constant bound to `name` with [`Builder::equ`].
pub fn cst(name: impl Into<String>) -> PSrc {
    PSrc::pending(PExpr::Const(name.into()))
}

/// Operand slot positions within an instruction, for fixups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Src0,
    Src1,
}

fn slot_mut(instr: &mut Instruction, slot: Slot) -> Option<&mut Src> {
    use Instruction as I;
    match (instr, slot) {
        (I::Move { src, .. }, Slot::Src0) => Some(src),
        (I::Alu { a, .. }, Slot::Src0) => Some(a),
        (I::Alu { b, .. }, Slot::Src1) => Some(b),
        (I::Alu1 { src, .. }, Slot::Src0) => Some(src),
        (I::Bc { src, .. }, Slot::Src0) => Some(src),
        (I::Jmp { target }, Slot::Src0) => Some(target),
        (I::Send { a, .. }, Slot::Src0) => Some(a),
        (I::Send { b: Some(b), .. }, Slot::Src1) => Some(b),
        (I::Rtag { src, .. }, Slot::Src0) => Some(src),
        (I::Wtag { src, .. }, Slot::Src0) => Some(src),
        (I::Wtag { tag, .. }, Slot::Src1) => Some(tag),
        (I::Check { src, .. }, Slot::Src0) => Some(src),
        (I::Enter { key, .. }, Slot::Src0) => Some(key),
        (I::Enter { value, .. }, Slot::Src1) => Some(value),
        (I::Xlate { key, .. }, Slot::Src0) => Some(key),
        (I::Probe { key, .. }, Slot::Src0) => Some(key),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct PInstr {
    instr: Instruction,
    fixups: Vec<(Slot, PExpr)>,
    branch: Option<String>,
}

#[derive(Debug, Clone)]
struct PData {
    name: String,
    region: Region,
    len: u32,
    init: Vec<Word>,
}

/// Incremental program builder.
///
/// Emission methods append one instruction each and return `&mut Self` so
/// short sequences can chain. Operands accept anything convertible to
/// [`Src`]/[`Dst`] (registers, immediates, memory references) plus the
/// pending-symbol helpers [`lab`], [`hdr`], [`seg`], [`seg_base`],
/// [`seg_len`], and [`cst`].
#[derive(Debug, Clone, Default)]
pub struct Builder {
    instrs: Vec<PInstr>,
    labels: Vec<(String, u32)>,
    data: Vec<PData>,
    equs: Vec<(String, Word)>,
    entry: Option<String>,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// The index the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Binds a code label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.push((name.into(), self.here()));
        self
    }

    /// Binds a named constant.
    pub fn equ(&mut self, name: impl Into<String>, value: Word) -> &mut Self {
        self.equs.push((name.into(), value));
        self
    }

    /// Declares an initialized data block.
    pub fn data(&mut self, name: impl Into<String>, region: Region, init: Vec<Word>) -> &mut Self {
        let len = init.len() as u32;
        self.data.push(PData {
            name: name.into(),
            region,
            len,
            init,
        });
        self
    }

    /// Declares a zero-initialized data block of `len` words.
    pub fn reserve(&mut self, name: impl Into<String>, region: Region, len: u32) -> &mut Self {
        self.data.push(PData {
            name: name.into(),
            region,
            len,
            init: Vec::new(),
        });
        self
    }

    /// Declares the background entry point.
    pub fn entry(&mut self, label: impl Into<String>) -> &mut Self {
        self.entry = Some(label.into());
        self
    }

    fn push(&mut self, instr: Instruction, fixups: Vec<(Slot, PExpr)>, branch: Option<String>) {
        self.instrs.push(PInstr {
            instr,
            fixups,
            branch,
        });
    }

    fn push_src1(&mut self, make: impl FnOnce(Src) -> Instruction, src: PSrc) {
        let mut fixups = Vec::new();
        if let Some(expr) = src.pending {
            fixups.push((Slot::Src0, expr));
        }
        self.push(make(src.ready), fixups, None);
    }

    fn push_src2(&mut self, make: impl FnOnce(Src, Src) -> Instruction, a: PSrc, b: PSrc) {
        let mut fixups = Vec::new();
        if let Some(expr) = a.pending {
            fixups.push((Slot::Src0, expr));
        }
        if let Some(expr) = b.pending {
            fixups.push((Slot::Src1, expr));
        }
        self.push(make(a.ready, b.ready), fixups, None);
    }

    /// Emits `MOVE dst, src`.
    pub fn mov(&mut self, dst: impl Into<Dst>, src: impl Into<PSrc>) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|src| Instruction::Move { dst, src }, src.into());
        self
    }

    /// Emits `MOVE dst, #value` (integer immediate).
    pub fn movi(&mut self, dst: impl Into<Dst>, value: i32) -> &mut Self {
        self.mov(dst, value)
    }

    /// Emits a binary ALU instruction.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: impl Into<Dst>,
        a: impl Into<PSrc>,
        b: impl Into<PSrc>,
    ) -> &mut Self {
        let dst = dst.into();
        self.push_src2(
            |a, b| Instruction::Alu { op, dst, a, b },
            a.into(),
            b.into(),
        );
        self
    }

    /// Emits a unary ALU instruction.
    pub fn alu1(&mut self, op: Alu1Op, dst: impl Into<Dst>, src: impl Into<PSrc>) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|src| Instruction::Alu1 { op, dst, src }, src.into());
        self
    }

    /// Emits an unconditional branch to `label`.
    pub fn br(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Instruction::Br { off: 0 }, Vec::new(), Some(label.into()));
        self
    }

    fn bc(&mut self, cond: Cond, src: PSrc, label: String) {
        let mut fixups = Vec::new();
        let mut src = src;
        if let Some(expr) = src.pending.take() {
            fixups.push((Slot::Src0, expr));
        }
        self.push(
            Instruction::Bc {
                cond,
                src: src.ready,
                off: 0,
            },
            fixups,
            Some(label),
        );
    }

    /// Emits `BT src, label` (branch if `bool` true).
    pub fn bt(&mut self, src: impl Into<PSrc>, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::True, src.into(), label.into());
        self
    }

    /// Emits `BF src, label` (branch if `bool` false).
    pub fn bf(&mut self, src: impl Into<PSrc>, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::False, src.into(), label.into());
        self
    }

    /// Emits `BZ src, label` (branch if integer zero).
    pub fn bz(&mut self, src: impl Into<PSrc>, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Zero, src.into(), label.into());
        self
    }

    /// Emits `BNZ src, label` (branch if integer non-zero).
    pub fn bnz(&mut self, src: impl Into<PSrc>, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::NonZero, src.into(), label.into());
        self
    }

    /// Emits an indirect jump.
    pub fn jmp(&mut self, target: impl Into<PSrc>) -> &mut Self {
        self.push_src1(|target| Instruction::Jmp { target }, target.into());
        self
    }

    /// Emits `JAL link, label`.
    pub fn jal(&mut self, link: DReg, label: impl Into<String>) -> &mut Self {
        self.push(
            Instruction::Jal { link, off: 0 },
            Vec::new(),
            Some(label.into()),
        );
        self
    }

    /// Emits the conventional call: `JAL R3, label`.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.jal(DReg::R3, label)
    }

    /// Emits the conventional return: `JMP R3`.
    pub fn ret(&mut self) -> &mut Self {
        self.jmp(DReg::R3)
    }

    /// Emits `SEND.p a` (inject one word, message continues).
    pub fn send(&mut self, priority: MsgPriority, a: impl Into<PSrc>) -> &mut Self {
        self.push_src1(
            |a| Instruction::Send {
                priority,
                a,
                b: None,
                end: false,
            },
            a.into(),
        );
        self
    }

    /// Emits `SEND2.p a, b` (inject two words, message continues).
    pub fn send2(
        &mut self,
        priority: MsgPriority,
        a: impl Into<PSrc>,
        b: impl Into<PSrc>,
    ) -> &mut Self {
        self.push_src2(
            |a, b| Instruction::Send {
                priority,
                a,
                b: Some(b),
                end: false,
            },
            a.into(),
            b.into(),
        );
        self
    }

    /// Emits `SENDE.p a` (inject one word and end the message).
    pub fn sende(&mut self, priority: MsgPriority, a: impl Into<PSrc>) -> &mut Self {
        self.push_src1(
            |a| Instruction::Send {
                priority,
                a,
                b: None,
                end: true,
            },
            a.into(),
        );
        self
    }

    /// Emits `SEND2E.p a, b` (inject two words and end the message).
    pub fn send2e(
        &mut self,
        priority: MsgPriority,
        a: impl Into<PSrc>,
        b: impl Into<PSrc>,
    ) -> &mut Self {
        self.push_src2(
            |a, b| Instruction::Send {
                priority,
                a,
                b: Some(b),
                end: true,
            },
            a.into(),
            b.into(),
        );
        self
    }

    /// Emits `SUSPEND`.
    pub fn suspend(&mut self) -> &mut Self {
        self.push(Instruction::Suspend, Vec::new(), None);
        self
    }

    /// Emits `RESUME`.
    pub fn resume(&mut self) -> &mut Self {
        self.push(Instruction::Resume, Vec::new(), None);
        self
    }

    /// Emits `RTAG dst, src`.
    pub fn rtag(&mut self, dst: impl Into<Dst>, src: impl Into<PSrc>) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|src| Instruction::Rtag { dst, src }, src.into());
        self
    }

    /// Emits `WTAG dst, src, tag`.
    pub fn wtag(
        &mut self,
        dst: impl Into<Dst>,
        src: impl Into<PSrc>,
        tag: impl Into<PSrc>,
    ) -> &mut Self {
        let dst = dst.into();
        self.push_src2(
            |src, tag| Instruction::Wtag { dst, src, tag },
            src.into(),
            tag.into(),
        );
        self
    }

    /// Emits `CHECK dst, src, tag`.
    pub fn check(&mut self, dst: impl Into<Dst>, src: impl Into<PSrc>, tag: Tag) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|src| Instruction::Check { dst, src, tag }, src.into());
        self
    }

    /// Emits `ENTER key, value`.
    pub fn enter(&mut self, key: impl Into<PSrc>, value: impl Into<PSrc>) -> &mut Self {
        self.push_src2(
            |key, value| Instruction::Enter { key, value },
            key.into(),
            value.into(),
        );
        self
    }

    /// Emits `XLATE dst, key` (faults on miss).
    pub fn xlate(&mut self, dst: impl Into<Dst>, key: impl Into<PSrc>) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|key| Instruction::Xlate { dst, key }, key.into());
        self
    }

    /// Emits `PROBE dst, key` (nil on miss).
    pub fn probe(&mut self, dst: impl Into<Dst>, key: impl Into<PSrc>) -> &mut Self {
        let dst = dst.into();
        self.push_src1(|key| Instruction::Probe { dst, key }, key.into());
        self
    }

    /// Emits `MARK class` (zero-cycle statistics attribution).
    pub fn mark(&mut self, class: StatClass) -> &mut Self {
        self.push(Instruction::Mark { class }, Vec::new(), None);
        self
    }

    /// Emits `HALT`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instruction::Halt, Vec::new(), None);
        self
    }

    /// Emits `NOP`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::Nop, Vec::new(), None);
        self
    }

    /// Loads the segment descriptor of data block `name` into an address
    /// register: `MOVE areg, seg(name)`.
    pub fn load_seg(&mut self, areg: AReg, name: impl Into<String>) -> &mut Self {
        self.mov(areg, seg(name))
    }

    /// Convenience: `ADD dst, a, #imm`.
    pub fn addi(&mut self, dst: impl Into<Dst>, a: impl Into<PSrc>, imm: i32) -> &mut Self {
        self.alu(AluOp::Add, dst, a, imm)
    }

    /// Convenience: `SUB dst, a, #imm`.
    pub fn subi(&mut self, dst: impl Into<Dst>, a: impl Into<PSrc>, imm: i32) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, imm)
    }

    /// Assembles the program: places data, resolves symbols and branches,
    /// and validates the image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for duplicate or missing symbols, branch targets
    /// that do not exist, memory exhaustion, or instructions violating
    /// hardware constraints.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        // 1. Label map.
        let mut label_map: HashMap<&str, u32> = HashMap::new();
        for (name, index) in &self.labels {
            if label_map.insert(name, *index).is_some() {
                return Err(AsmError::new(format!("duplicate label `{name}`")));
            }
        }

        // 2. Resolve branch offsets (they only depend on indices).
        let mut code: Vec<Instruction> = Vec::with_capacity(self.instrs.len());
        for (index, p) in self.instrs.iter().enumerate() {
            let mut instr = p.instr;
            if let Some(target) = &p.branch {
                let target_ip = *label_map
                    .get(target.as_str())
                    .ok_or_else(|| AsmError::new(format!("unknown branch target `{target}`")))?;
                let off = target_ip as i64 - (index as i64 + 1);
                let off = i32::try_from(off)
                    .map_err(|_| AsmError::new(format!("branch to `{target}` out of range")))?;
                match &mut instr {
                    Instruction::Br { off: o }
                    | Instruction::Bc { off: o, .. }
                    | Instruction::Jal { off: o, .. } => *o = off,
                    other => {
                        return Err(AsmError::new(format!(
                            "internal: branch fixup on non-branch {other}"
                        )))
                    }
                }
            }
            code.push(instr);
        }

        // 3. Footprint with placeholder (full-width) immediates, then place
        //    data blocks. Placeholders and resolved symbols encode to the
        //    same width, so the footprint is stable.
        let code_base = VECTOR_COUNT;
        let code_words = footprint_words(&code);
        let mut imem_cursor = code_base + code_words;
        let mut emem_cursor = EMEM_BASE;
        let mut blocks = Vec::with_capacity(self.data.len());
        let mut symbols = SymbolTable::new();
        for d in &self.data {
            let base = match d.region {
                Region::Imem => {
                    let base = imem_cursor;
                    imem_cursor += d.len;
                    if imem_cursor > EMEM_BASE {
                        return Err(AsmError::new(format!(
                            "internal memory exhausted placing `{}` ({} words over)",
                            d.name,
                            imem_cursor - EMEM_BASE
                        )));
                    }
                    base
                }
                Region::Emem => {
                    let base = emem_cursor;
                    emem_cursor += d.len;
                    if emem_cursor > MEM_WORDS {
                        return Err(AsmError::new(format!(
                            "external memory exhausted placing `{}`",
                            d.name
                        )));
                    }
                    base
                }
            };
            let block = DataBlock {
                name: d.name.clone(),
                base,
                len: d.len,
                init: d.init.clone(),
            };
            if symbols
                .insert(d.name.clone(), SymbolValue::Data(block.seg()))
                .is_some()
            {
                return Err(AsmError::new(format!("duplicate symbol `{}`", d.name)));
            }
            blocks.push(block);
        }
        for (name, index) in &self.labels {
            if symbols
                .insert(name.clone(), SymbolValue::Code(*index))
                .is_some()
            {
                return Err(AsmError::new(format!("duplicate symbol `{name}`")));
            }
        }
        for (name, value) in &self.equs {
            if symbols
                .insert(name.clone(), SymbolValue::Const(*value))
                .is_some()
            {
                return Err(AsmError::new(format!("duplicate symbol `{name}`")));
            }
        }

        // 4. Resolve pending immediates.
        let resolve = |expr: &PExpr| -> Result<Word, AsmError> {
            let missing = |name: &str| AsmError::new(format!("unknown symbol `{name}`"));
            match expr {
                PExpr::LabelIp(name) => match symbols.get(name) {
                    Some(SymbolValue::Code(ip)) => Ok(Word::ip(ip)),
                    Some(_) => Err(AsmError::new(format!("`{name}` is not a code label"))),
                    None => Err(missing(name)),
                },
                PExpr::MsgHdr(name, len) => match symbols.get(name) {
                    Some(SymbolValue::Code(ip)) => Ok(MsgHeader::new(ip, *len).to_word()),
                    Some(_) => Err(AsmError::new(format!("`{name}` is not a code label"))),
                    None => Err(missing(name)),
                },
                PExpr::Seg(name) => symbols
                    .data(name)
                    .map(|s| s.to_word())
                    .ok_or_else(|| missing(name)),
                PExpr::SegBase(name) => symbols
                    .data(name)
                    .map(|s| Word::int(s.base as i32))
                    .ok_or_else(|| missing(name)),
                PExpr::SegLen(name) => {
                    let block = blocks
                        .iter()
                        .find(|b| b.name == *name)
                        .ok_or_else(|| missing(name))?;
                    Ok(Word::int(block.len as i32))
                }
                PExpr::Const(name) => match symbols.get(name) {
                    Some(SymbolValue::Const(w)) => Ok(w),
                    Some(_) => Err(AsmError::new(format!("`{name}` is not a constant"))),
                    None => Err(missing(name)),
                },
            }
        };
        for (index, p) in self.instrs.iter().enumerate() {
            for (slot, expr) in &p.fixups {
                let word = resolve(expr)?;
                let src = slot_mut(&mut code[index], *slot).ok_or_else(|| {
                    AsmError::new(format!("internal: bad fixup slot in instruction {index}"))
                })?;
                *src = Src::Imm(word);
            }
        }

        // 5. Entry point.
        let entry = match &self.entry {
            Some(name) => Some(
                symbols
                    .code(name)
                    .ok_or_else(|| AsmError::new(format!("unknown entry label `{name}`")))?,
            ),
            None => None,
        };

        let program = Program {
            code,
            code_base,
            code_words,
            data: blocks,
            symbols,
            entry,
        };
        program.validate().map_err(AsmError::new)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::operand::MemRef;
    use jm_isa::reg::AReg::*;
    use jm_isa::reg::DReg::*;

    #[test]
    fn builds_and_resolves_labels() {
        let mut b = Builder::new();
        b.label("loop");
        b.subi(R0, R0, 1);
        b.bnz(R0, "loop");
        b.halt();
        b.entry("loop");
        let p = b.assemble().unwrap();
        assert_eq!(p.entry, Some(0));
        match p.code[1] {
            Instruction::Bc { off, .. } => assert_eq!(off, -2),
            ref other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn resolves_data_segments_and_headers() {
        let mut b = Builder::new();
        b.data("tbl", Region::Imem, vec![Word::int(1), Word::int(2)]);
        b.reserve("buf", Region::Emem, 100);
        b.label("handler");
        b.suspend();
        b.label("main");
        b.mov(A0, seg("tbl"));
        b.mov(R0, hdr("handler", 3));
        b.mov(R1, seg_base("buf"));
        b.mov(R2, seg_len("buf"));
        b.halt();
        let p = b.assemble().unwrap();
        let tbl = p.segment("tbl");
        assert_eq!(tbl.len, 2);
        assert!(tbl.base >= p.code_base + p.code_words - 1);
        let buf = p.segment("buf");
        assert_eq!(buf.base, EMEM_BASE);
        // Check resolved immediates.
        let main = p.handler("main") as usize;
        match p.code[main + 1] {
            Instruction::Move {
                src: Src::Imm(w), ..
            } => {
                let h = jm_isa::word::MsgHeader::from_word(w);
                assert_eq!(h.ip, p.handler("handler"));
                assert_eq!(h.len, 3);
            }
            ref other => panic!("unexpected {other}"),
        }
        match p.code[main + 3] {
            Instruction::Move {
                src: Src::Imm(w), ..
            } => assert_eq!(w.as_i32(), 100),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_duplicate_labels() {
        let mut b = Builder::new();
        b.label("x").nop();
        b.label("x").nop();
        assert!(b.assemble().is_err());
    }

    #[test]
    fn rejects_unknown_branch_target() {
        let mut b = Builder::new();
        b.br("nowhere");
        let err = b.assemble().unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn rejects_imem_exhaustion() {
        let mut b = Builder::new();
        b.reserve("huge", Region::Imem, 5000);
        b.nop();
        assert!(b.assemble().unwrap_err().to_string().contains("exhausted"));
    }

    #[test]
    fn rejects_two_memory_operands() {
        let mut b = Builder::new();
        b.mov(MemRef::disp(A0, 0), MemRef::disp(A1, 0));
        assert!(b.assemble().is_err());
    }

    #[test]
    fn chains_fluently() {
        let mut b = Builder::new();
        b.label("f").movi(R0, 1).addi(R0, R0, 2).halt();
        let p = b.assemble().unwrap();
        assert_eq!(p.code.len(), 3);
    }

    #[test]
    fn equ_constants_resolve() {
        let mut b = Builder::new();
        b.equ("K", Word::int(77));
        b.mov(R0, cst("K"));
        b.halt();
        let p = b.assemble().unwrap();
        match p.code[0] {
            Instruction::Move {
                src: Src::Imm(w), ..
            } => assert_eq!(w.as_i32(), 77),
            ref other => panic!("unexpected {other}"),
        }
    }
}
