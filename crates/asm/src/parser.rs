//! Text assembly parser.
//!
//! Line-oriented syntax; `;` starts a comment. Example:
//!
//! ```text
//! .equ K 3
//! .reserve imem counter 1
//! .data emem table 1 2 0x10 cfut
//! .entry main
//!
//! main:
//!     MOVE A0, seg(counter)
//!     MOVE R0, #0
//! loop:
//!     ADD R0, R0, #1
//!     LT R1, R0, cst(K)
//!     BT R1, loop
//!     MOVE [A0+0], R0
//!     SEND.0 NNR
//!     SEND2E.0 hdr(main,2), R0
//!     HALT
//! ```
//!
//! Operand forms: `R0`–`R3`, `A0`–`A3`, `#imm` (`#5`, `#-3`, `#0x1f`,
//! `#cfut`, `#nil`, `#true`, `#false`), memory `[A2+4]` / `[A2+R1]`,
//! special registers (`NNR`, `NID`, `NNODES`, `DIMS`, `CYCLE`, `FIP`,
//! `FVAL`, `FADDR`), label references `@name` (an `ip` immediate),
//! `hdr(name,len)`, `seg(name)`, `base(name)`, `len(name)`, `cst(name)`,
//! and bare label names as branch targets.

use crate::builder::{cst, hdr, lab, seg, seg_base, seg_len, Builder, PSrc, Region};
use crate::error::AsmError;
use crate::program::Program;
use jm_isa::instr::{Alu1Op, AluOp, MsgPriority, StatClass};
use jm_isa::operand::{Dst, MemRef, Special};
use jm_isa::reg::{AReg, DReg};
use jm_isa::tag::Tag;
use jm_isa::word::Word;

/// Parses a textual assembly program and assembles it.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based line number for syntax
/// errors, or an assembly error (unknown symbols, duplicate labels, …).
pub fn parse(source: &str) -> Result<Program, AsmError> {
    let mut builder = Builder::new();
    for (line_index, raw_line) in source.lines().enumerate() {
        let line_no = line_index + 1;
        parse_line(&mut builder, raw_line, line_no)?;
    }
    builder.assemble()
}

fn parse_line(b: &mut Builder, raw: &str, line_no: usize) -> Result<(), AsmError> {
    let line = match raw.find(';') {
        Some(i) => &raw[..i],
        None => raw,
    };
    let mut rest = line.trim();
    if rest.is_empty() {
        return Ok(());
    }
    // Leading labels: `name:`.
    while let Some(colon) = rest.find(':') {
        let candidate = rest[..colon].trim();
        if candidate.is_empty() || !is_ident(candidate) {
            break;
        }
        // A colon inside an operand list would follow a mnemonic with
        // spaces; only treat as label when the prefix is a lone identifier.
        b.label(candidate);
        rest = rest[colon + 1..].trim();
        if rest.is_empty() {
            return Ok(());
        }
    }
    if rest.starts_with('.') {
        return parse_directive(b, rest, line_no);
    }
    parse_instruction(b, rest, line_no)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

fn parse_region(token: &str, line_no: usize) -> Result<Region, AsmError> {
    match token.to_ascii_lowercase().as_str() {
        "imem" => Ok(Region::Imem),
        "emem" => Ok(Region::Emem),
        other => Err(AsmError::at_line(line_no, format!("bad region `{other}`"))),
    }
}

fn parse_int(token: &str, line_no: usize) -> Result<i64, AsmError> {
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError::at_line(line_no, format!("bad integer `{token}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_word_literal(token: &str, line_no: usize) -> Result<Word, AsmError> {
    match token.to_ascii_lowercase().as_str() {
        "cfut" => return Ok(Word::cfut()),
        "nil" => return Ok(Word::NIL),
        "true" => return Ok(Word::bool(true)),
        "false" => return Ok(Word::bool(false)),
        _ => {}
    }
    let value = parse_int(token, line_no)?;
    i32::try_from(value)
        .map(Word::int)
        .map_err(|_| AsmError::at_line(line_no, format!("integer `{token}` out of range")))
}

fn parse_directive(b: &mut Builder, rest: &str, line_no: usize) -> Result<(), AsmError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens[0].to_ascii_lowercase().as_str() {
        ".equ" => {
            if tokens.len() != 3 {
                return Err(AsmError::at_line(line_no, ".equ needs: name value"));
            }
            let word = parse_word_literal(tokens[2], line_no)?;
            b.equ(tokens[1], word);
        }
        ".data" => {
            if tokens.len() < 3 {
                return Err(AsmError::at_line(
                    line_no,
                    ".data needs: region name words…",
                ));
            }
            let region = parse_region(tokens[1], line_no)?;
            let words = tokens[3..]
                .iter()
                .map(|t| parse_word_literal(t, line_no))
                .collect::<Result<Vec<_>, _>>()?;
            if words.is_empty() {
                return Err(AsmError::at_line(line_no, ".data needs at least one word"));
            }
            b.data(tokens[2], region, words);
        }
        ".reserve" => {
            if tokens.len() != 4 {
                return Err(AsmError::at_line(
                    line_no,
                    ".reserve needs: region name len",
                ));
            }
            let region = parse_region(tokens[1], line_no)?;
            let len = parse_int(tokens[3], line_no)?;
            let len = u32::try_from(len)
                .map_err(|_| AsmError::at_line(line_no, "negative reserve length"))?;
            b.reserve(tokens[2], region, len);
        }
        ".entry" => {
            if tokens.len() != 2 {
                return Err(AsmError::at_line(line_no, ".entry needs a label"));
            }
            b.entry(tokens[1]);
        }
        other => {
            return Err(AsmError::at_line(
                line_no,
                format!("unknown directive `{other}`"),
            ))
        }
    }
    Ok(())
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas that are not inside parentheses or brackets.
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in rest.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                current.push(c);
            }
            ')' | ']' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

fn parse_dreg(token: &str) -> Option<DReg> {
    match token.to_ascii_uppercase().as_str() {
        "R0" => Some(DReg::R0),
        "R1" => Some(DReg::R1),
        "R2" => Some(DReg::R2),
        "R3" => Some(DReg::R3),
        _ => None,
    }
}

fn parse_areg(token: &str) -> Option<AReg> {
    match token.to_ascii_uppercase().as_str() {
        "A0" => Some(AReg::A0),
        "A1" => Some(AReg::A1),
        "A2" => Some(AReg::A2),
        "A3" => Some(AReg::A3),
        _ => None,
    }
}

fn parse_special(token: &str) -> Option<Special> {
    match token.to_ascii_uppercase().as_str() {
        "NNR" => Some(Special::Nnr),
        "NID" => Some(Special::Nid),
        "NNODES" => Some(Special::NNodes),
        "DIMS" => Some(Special::Dims),
        "CYCLE" => Some(Special::Cycle),
        "FIP" => Some(Special::Fip),
        "FVAL" => Some(Special::FVal),
        "FADDR" => Some(Special::FAddr),
        _ => None,
    }
}

fn parse_mem(token: &str, line_no: usize) -> Result<MemRef, AsmError> {
    let inner = token
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError::at_line(line_no, format!("bad memory operand `{token}`")))?;
    let (base_str, idx_str) = inner.split_once('+').ok_or_else(|| {
        AsmError::at_line(line_no, format!("memory operand needs `+`: `{token}`"))
    })?;
    let base = parse_areg(base_str.trim())
        .ok_or_else(|| AsmError::at_line(line_no, format!("bad base register `{base_str}`")))?;
    let idx_str = idx_str.trim();
    if let Some(reg) = parse_dreg(idx_str) {
        Ok(MemRef::reg(base, reg))
    } else {
        let disp = parse_int(idx_str, line_no)?;
        let disp =
            u32::try_from(disp).map_err(|_| AsmError::at_line(line_no, "negative displacement"))?;
        Ok(MemRef::disp(base, disp))
    }
}

fn call_arg<'a>(token: &'a str, name: &str) -> Option<&'a str> {
    token
        .strip_prefix(name)?
        .strip_prefix('(')?
        .strip_suffix(')')
}

fn parse_psrc(token: &str, line_no: usize) -> Result<PSrc, AsmError> {
    if let Some(reg) = parse_dreg(token) {
        return Ok(reg.into());
    }
    if let Some(reg) = parse_areg(token) {
        return Ok(reg.into());
    }
    if let Some(sp) = parse_special(token) {
        return Ok(sp.into());
    }
    if let Some(imm) = token.strip_prefix('#') {
        return Ok(parse_word_literal(imm, line_no)?.into());
    }
    if token.starts_with('[') {
        return Ok(parse_mem(token, line_no)?.into());
    }
    if let Some(label) = token.strip_prefix('@') {
        return Ok(lab(label));
    }
    if let Some(args) = call_arg(token, "hdr") {
        let (name, len) = args.split_once(',').ok_or_else(|| {
            AsmError::at_line(line_no, format!("hdr needs (label,len): `{token}`"))
        })?;
        let len = parse_int(len.trim(), line_no)?;
        let len = u32::try_from(len)
            .map_err(|_| AsmError::at_line(line_no, "negative message length"))?;
        return Ok(hdr(name.trim(), len));
    }
    if let Some(name) = call_arg(token, "seg") {
        return Ok(seg(name.trim()));
    }
    if let Some(name) = call_arg(token, "base") {
        return Ok(seg_base(name.trim()));
    }
    if let Some(name) = call_arg(token, "len") {
        return Ok(seg_len(name.trim()));
    }
    if let Some(name) = call_arg(token, "cst") {
        return Ok(cst(name.trim()));
    }
    Err(AsmError::at_line(
        line_no,
        format!("cannot parse operand `{token}`"),
    ))
}

fn parse_dst(token: &str, line_no: usize) -> Result<Dst, AsmError> {
    if let Some(reg) = parse_dreg(token) {
        return Ok(Dst::D(reg));
    }
    if let Some(reg) = parse_areg(token) {
        return Ok(Dst::A(reg));
    }
    if token.starts_with('[') {
        return Ok(Dst::Mem(parse_mem(token, line_no)?));
    }
    Err(AsmError::at_line(
        line_no,
        format!("cannot parse destination `{token}`"),
    ))
}

fn parse_tag_name(token: &str, line_no: usize) -> Result<Tag, AsmError> {
    for tag in Tag::ALL {
        if tag.to_string().eq_ignore_ascii_case(token) {
            return Ok(tag);
        }
    }
    Err(AsmError::at_line(line_no, format!("unknown tag `{token}`")))
}

fn parse_stat_class(token: &str, line_no: usize) -> Result<StatClass, AsmError> {
    for class in StatClass::ALL {
        if class.label().eq_ignore_ascii_case(token) {
            return Ok(class);
        }
    }
    Err(AsmError::at_line(
        line_no,
        format!("unknown stat class `{token}`"),
    ))
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    AluOp::ALL
        .into_iter()
        .find(|op| op.mnemonic().eq_ignore_ascii_case(mnemonic))
}

fn alu1_op(mnemonic: &str) -> Option<Alu1Op> {
    Alu1Op::ALL
        .into_iter()
        .find(|op| op.mnemonic().eq_ignore_ascii_case(mnemonic))
}

fn parse_instruction(b: &mut Builder, rest: &str, line_no: usize) -> Result<(), AsmError> {
    let (mnemonic, operand_str) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let ops = split_operands(operand_str);
    let arity = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::at_line(
                line_no,
                format!("{mnemonic} expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let upper = mnemonic.to_ascii_uppercase();

    // SEND family: SEND.0, SEND2.1, SENDE.0, SEND2E.1 …
    if let Some((head, prio)) = upper.split_once('.') {
        let priority = match prio {
            "0" => MsgPriority::P0,
            "1" => MsgPriority::P1,
            other => {
                return Err(AsmError::at_line(
                    line_no,
                    format!("bad send priority `{other}`"),
                ))
            }
        };
        let (two, end) = match head {
            "SEND" => (false, false),
            "SEND2" => (true, false),
            "SENDE" => (false, true),
            "SEND2E" => (true, true),
            other => {
                return Err(AsmError::at_line(
                    line_no,
                    format!("unknown mnemonic `{other}.{prio}`"),
                ))
            }
        };
        if two {
            arity(2)?;
            let a = parse_psrc(&ops[0], line_no)?;
            let bb = parse_psrc(&ops[1], line_no)?;
            if end {
                b.send2e(priority, a, bb);
            } else {
                b.send2(priority, a, bb);
            }
        } else {
            arity(1)?;
            let a = parse_psrc(&ops[0], line_no)?;
            if end {
                b.sende(priority, a);
            } else {
                b.send(priority, a);
            }
        }
        return Ok(());
    }

    if let Some(op) = alu_op(&upper) {
        arity(3)?;
        let dst = parse_dst(&ops[0], line_no)?;
        let a = parse_psrc(&ops[1], line_no)?;
        let bb = parse_psrc(&ops[2], line_no)?;
        b.alu(op, dst, a, bb);
        return Ok(());
    }
    if let Some(op) = alu1_op(&upper) {
        arity(2)?;
        let dst = parse_dst(&ops[0], line_no)?;
        let src = parse_psrc(&ops[1], line_no)?;
        b.alu1(op, dst, src);
        return Ok(());
    }

    match upper.as_str() {
        "MOVE" => {
            arity(2)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let src = parse_psrc(&ops[1], line_no)?;
            b.mov(dst, src);
        }
        "BR" => {
            arity(1)?;
            b.br(ops[0].as_str());
        }
        "BT" | "BF" | "BZ" | "BNZ" => {
            arity(2)?;
            let src = parse_psrc(&ops[0], line_no)?;
            match upper.as_str() {
                "BT" => b.bt(src, ops[1].as_str()),
                "BF" => b.bf(src, ops[1].as_str()),
                "BZ" => b.bz(src, ops[1].as_str()),
                _ => b.bnz(src, ops[1].as_str()),
            };
        }
        "JMP" => {
            arity(1)?;
            let target = parse_psrc(&ops[0], line_no)?;
            b.jmp(target);
        }
        "JAL" => {
            arity(2)?;
            let link = parse_dreg(&ops[0])
                .ok_or_else(|| AsmError::at_line(line_no, "JAL link must be a data register"))?;
            b.jal(link, ops[1].as_str());
        }
        "CALL" => {
            arity(1)?;
            b.call(ops[0].as_str());
        }
        "RET" => {
            arity(0)?;
            b.ret();
        }
        "SUSPEND" => {
            arity(0)?;
            b.suspend();
        }
        "RESUME" => {
            arity(0)?;
            b.resume();
        }
        "RTAG" => {
            arity(2)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let src = parse_psrc(&ops[1], line_no)?;
            b.rtag(dst, src);
        }
        "WTAG" => {
            arity(3)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let src = parse_psrc(&ops[1], line_no)?;
            let tag = parse_psrc(&ops[2], line_no)?;
            b.wtag(dst, src, tag);
        }
        "CHECK" => {
            arity(3)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let src = parse_psrc(&ops[1], line_no)?;
            let tag = parse_tag_name(&ops[2], line_no)?;
            b.check(dst, src, tag);
        }
        "ENTER" => {
            arity(2)?;
            let key = parse_psrc(&ops[0], line_no)?;
            let value = parse_psrc(&ops[1], line_no)?;
            b.enter(key, value);
        }
        "XLATE" => {
            arity(2)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let key = parse_psrc(&ops[1], line_no)?;
            b.xlate(dst, key);
        }
        "PROBE" => {
            arity(2)?;
            let dst = parse_dst(&ops[0], line_no)?;
            let key = parse_psrc(&ops[1], line_no)?;
            b.probe(dst, key);
        }
        "MARK" => {
            arity(1)?;
            let class = parse_stat_class(&ops[0], line_no)?;
            b.mark(class);
        }
        "HALT" => {
            arity(0)?;
            b.halt();
        }
        "NOP" => {
            arity(0)?;
            b.nop();
        }
        other => {
            return Err(AsmError::at_line(
                line_no,
                format!("unknown mnemonic `{other}`"),
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::instr::Instruction;
    use jm_isa::operand::Src;

    #[test]
    fn parses_the_module_example() {
        let src = r#"
.equ K 3
.reserve imem counter 1
.data emem table 1 2 0x10 cfut
.entry main

main:
    MOVE A0, seg(counter)
    MOVE R0, #0
loop:
    ADD R0, R0, #1
    LT R1, R0, cst(K)
    BT R1, loop
    MOVE [A0+0], R0
    SEND.0 NNR
    SEND2E.0 hdr(main,2), R0
    HALT
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.entry, Some(p.handler("main")));
        assert_eq!(p.code.len(), 9);
        let table = p.segment("table");
        assert_eq!(table.len, 4);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("NOP\nBOGUS R0\n").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(err.to_string().contains("BOGUS"));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse("MOVE R0, [A3+2]\nMOVE [A0+R1], R0\nHALT\n").unwrap();
        assert!(matches!(p.code[0], Instruction::Move { .. }));
        assert_eq!(p.code.len(), 3);
    }

    #[test]
    fn parses_send_priorities() {
        let p = parse("SEND.1 R0\nSEND2E.0 R0, R1\n").unwrap();
        match p.code[0] {
            Instruction::Send { priority, end, .. } => {
                assert_eq!(priority, MsgPriority::P1);
                assert!(!end);
            }
            ref other => panic!("unexpected {other}"),
        }
        match p.code[1] {
            Instruction::Send {
                priority, end, b, ..
            } => {
                assert_eq!(priority, MsgPriority::P0);
                assert!(end);
                assert!(b.is_some());
            }
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_tag_and_mark_names() {
        let p = parse("CHECK R0, R1, cfut\nMARK comm\nHALT\n").unwrap();
        match p.code[0] {
            Instruction::Check { tag, .. } => assert_eq!(tag, Tag::CFut),
            ref other => panic!("unexpected {other}"),
        }
        match p.code[1] {
            Instruction::Mark { class } => assert_eq!(class, StatClass::Comm),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse("ADD R0, R1\n").is_err());
        assert!(parse("HALT R0\n").is_err());
    }

    #[test]
    fn labels_on_their_own_line() {
        let p = parse("start:\n  NOP\n  BR start\n").unwrap();
        assert_eq!(p.handler("start"), 0);
        match p.code[1] {
            Instruction::Br { off } => assert_eq!(off, -2),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = parse("MOVE R0, #-5\nMOVE R1, #0xff\nHALT\n").unwrap();
        match (&p.code[0], &p.code[1]) {
            (
                Instruction::Move {
                    src: Src::Imm(a), ..
                },
                Instruction::Move {
                    src: Src::Imm(b), ..
                },
            ) => {
                assert_eq!(a.as_i32(), -5);
                assert_eq!(b.as_i32(), 255);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
