//! Assembler error type.

use std::fmt;

/// An error produced while building, parsing, or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    message: String,
    line: Option<usize>,
}

impl AsmError {
    /// Creates an error with no source location.
    pub fn new(message: impl Into<String>) -> AsmError {
        AsmError {
            message: message.into(),
            line: None,
        }
    }

    /// Creates an error attributed to a 1-based source line.
    pub fn at_line(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            message: message.into(),
            line: Some(line),
        }
    }

    /// The 1-based source line, if the error came from the text parser.
    pub fn line(&self) -> Option<usize> {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        assert_eq!(AsmError::at_line(3, "bad").to_string(), "line 3: bad");
        assert_eq!(AsmError::new("bad").to_string(), "bad");
        assert_eq!(AsmError::at_line(3, "bad").line(), Some(3));
    }
}
