//! # jm-asm
//!
//! Assembler for the Message-Driven Processor.
//!
//! Programs for the J-Machine simulator can be written two ways:
//!
//! * through the programmatic [`Builder`] API, which the runtime libraries
//!   and the four macro-benchmark applications use (mirroring the paper's
//!   hand-tuned assembly, §4.1), or
//! * in a textual assembly syntax parsed by [`parse`], convenient for tests
//!   and examples.
//!
//! Both paths produce a [`Program`]: a single code image plus initialized
//! data blocks, loaded identically onto every node (the J-Machine programming
//! systems are SPMD at the image level — handler addresses must be valid on
//! every node because message headers carry raw instruction pointers).
//!
//! # Example
//!
//! ```
//! use jm_asm::{Builder, Region};
//! use jm_isa::reg::{DReg::*, AReg::*};
//! use jm_isa::operand::MemRef;
//!
//! # fn main() -> Result<(), jm_asm::AsmError> {
//! let mut b = Builder::new();
//! b.reserve("counter", Region::Imem, 1);
//! b.label("main");
//! b.movi(R0, 41);
//! b.addi(R0, R0, 1);
//! b.load_seg(A0, "counter");
//! b.mov(MemRef::disp(A0, 0), R0);
//! b.halt();
//! b.entry("main");
//! let program = b.assemble()?;
//! assert_eq!(program.code.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod error;
mod parser;
mod program;

pub use builder::{cst, hdr, lab, seg, seg_base, seg_len, Builder, PSrc, Region};
pub use error::AsmError;
pub use parser::parse;
pub use program::{DataBlock, Program, SymbolTable, SymbolValue};
