//! The assembled program image.

use jm_isa::consts::{EMEM_BASE, MEM_WORDS, VECTOR_COUNT};
use jm_isa::instr::Instruction;
use jm_isa::word::{SegDesc, Word};
use std::collections::HashMap;
use std::fmt;

/// The value bound to a symbol after assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolValue {
    /// A code label: an instruction index.
    Code(u32),
    /// A data block: its segment descriptor.
    Data(SegDesc),
    /// A named constant (`.equ`).
    Const(Word),
}

/// Symbol table mapping names to [`SymbolValue`]s.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    map: HashMap<String, SymbolValue>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Binds `name`, returning the previous binding if any.
    pub fn insert(&mut self, name: impl Into<String>, value: SymbolValue) -> Option<SymbolValue> {
        self.map.insert(name.into(), value)
    }

    /// Looks up a symbol.
    pub fn get(&self, name: &str) -> Option<SymbolValue> {
        self.map.get(name).copied()
    }

    /// The instruction index of a code label.
    pub fn code(&self, name: &str) -> Option<u32> {
        match self.get(name)? {
            SymbolValue::Code(ip) => Some(ip),
            _ => None,
        }
    }

    /// The segment descriptor of a data block.
    pub fn data(&self, name: &str) -> Option<SegDesc> {
        match self.get(name)? {
            SymbolValue::Data(seg) => Some(seg),
            _ => None,
        }
    }

    /// Iterates over all `(name, value)` bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SymbolValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A placed data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataBlock {
    /// Symbolic name.
    pub name: String,
    /// Base word address on every node.
    pub base: u32,
    /// Length in words.
    pub len: u32,
    /// Initialization words (length ≤ `len`; the rest is nil-filled).
    pub init: Vec<Word>,
}

impl DataBlock {
    /// The segment descriptor naming this block. Blocks longer than a
    /// bounded descriptor can express are given unbounded (privileged)
    /// descriptors.
    pub fn seg(&self) -> SegDesc {
        if self.len <= SegDesc::MAX_LEN {
            SegDesc::new(self.base, self.len)
        } else {
            SegDesc::unbounded(self.base)
        }
    }

    /// Whether the block lies entirely in internal memory.
    pub fn in_imem(&self) -> bool {
        self.base + self.len <= EMEM_BASE
    }
}

/// An assembled, fully resolved program image.
///
/// The same image is loaded onto every node of the machine; per-node
/// behaviour comes from the `NID`/`NNR` special registers and from which
/// messages each node receives.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Decoded instructions; an instruction pointer is an index here.
    pub code: Vec<Instruction>,
    /// Nominal word address where the encoded code image begins (after the
    /// fault vectors). Used for fetch-timing (internal vs. external code).
    pub code_base: u32,
    /// Number of memory words the encoded code occupies.
    pub code_words: u32,
    /// Placed data blocks.
    pub data: Vec<DataBlock>,
    /// Symbol table.
    pub symbols: SymbolTable,
    /// Background entry point (instruction index), if declared.
    pub entry: Option<u32>,
}

impl Program {
    /// The instruction index bound to a required code label.
    ///
    /// # Panics
    ///
    /// Panics if the label is missing — programs address their own handlers,
    /// so a missing label is a programming error.
    pub fn handler(&self, name: &str) -> u32 {
        self.symbols
            .code(name)
            .unwrap_or_else(|| panic!("program has no code label `{name}`"))
    }

    /// The segment descriptor of a required data block.
    ///
    /// # Panics
    ///
    /// Panics if the block is missing.
    pub fn segment(&self, name: &str) -> SegDesc {
        self.symbols
            .data(name)
            .unwrap_or_else(|| panic!("program has no data block `{name}`"))
    }

    /// Whether all code fits in internal memory (affects fetch timing).
    pub fn code_in_imem(&self) -> bool {
        self.code_base + self.code_words <= EMEM_BASE
    }

    /// Validates the image: instruction constraints, address ranges, and
    /// entry-point sanity.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (index, instr) in self.code.iter().enumerate() {
            instr
                .validate()
                .map_err(|e| format!("instruction {index}: {e}"))?;
        }
        if self.code_base < VECTOR_COUNT {
            return Err(format!(
                "code base {} overlaps the fault vectors",
                self.code_base
            ));
        }
        for block in &self.data {
            if block.base < VECTOR_COUNT {
                return Err(format!("data block `{}` overlaps the vectors", block.name));
            }
            if block.base + block.len > MEM_WORDS {
                return Err(format!(
                    "data block `{}` exceeds node memory ({} words)",
                    block.name, MEM_WORDS
                ));
            }
            if block.init.len() as u32 > block.len {
                return Err(format!(
                    "data block `{}` has more init words than its length",
                    block.name
                ));
            }
        }
        if let Some(entry) = self.entry {
            if entry as usize >= self.code.len() {
                return Err(format!("entry point {entry} outside code"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; {} instructions, {} data blocks",
            self.code.len(),
            self.data.len()
        )?;
        // Invert code symbols for labelled disassembly.
        let mut labels: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, value) in self.symbols.iter() {
            if let SymbolValue::Code(ip) = value {
                labels.entry(ip).or_default().push(name);
            }
        }
        for (index, instr) in self.code.iter().enumerate() {
            if let Some(names) = labels.get(&(index as u32)) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "    {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::operand::{Dst, Src};
    use jm_isa::reg::DReg;

    #[test]
    fn symbol_table_kinds() {
        let mut t = SymbolTable::new();
        t.insert("f", SymbolValue::Code(3));
        t.insert("d", SymbolValue::Data(SegDesc::new(100, 4)));
        t.insert("k", SymbolValue::Const(Word::int(9)));
        assert_eq!(t.code("f"), Some(3));
        assert_eq!(t.code("d"), None);
        assert_eq!(t.data("d"), Some(SegDesc::new(100, 4)));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn oversize_blocks_get_unbounded_descriptors() {
        let block = DataBlock {
            name: "big".into(),
            base: 5000,
            len: 10_000,
            init: vec![],
        };
        assert!(block.seg().is_unbounded());
        assert!(!block.in_imem());
    }

    #[test]
    fn validate_catches_entry_out_of_range() {
        let p = Program {
            code: vec![Instruction::Nop],
            code_base: 16,
            code_words: 1,
            entry: Some(5),
            ..Program::default()
        };
        assert!(p.validate().unwrap_err().contains("entry"));
    }

    #[test]
    fn display_shows_labels() {
        let mut p = Program {
            code: vec![
                Instruction::Move {
                    dst: Dst::D(DReg::R0),
                    src: Src::imm(1),
                },
                Instruction::Halt,
            ],
            code_base: 16,
            code_words: 2,
            ..Program::default()
        };
        p.symbols.insert("main", SymbolValue::Code(0));
        let text = p.to_string();
        assert!(text.contains("main:"));
        assert!(text.contains("HALT"));
    }
}
