//! Shared helpers for the jmsim examples.

/// Pretty-prints a machine statistics summary for example output.
pub fn print_summary(stats: &jm_machine::MachineStats) {
    println!(
        "  {} cycles ({:.2} ms at 12.5 MHz), {} instructions, {} messages",
        stats.cycles,
        stats.millis(),
        stats.nodes.instructions,
        stats.net.delivered_msgs
    );
    for class in jm_isa::StatClass::ALL {
        let f = stats.class_fraction(class);
        if f > 0.001 {
            println!("    {:<9} {:>5.1}%", class.to_string(), 100.0 * f);
        }
    }
}
