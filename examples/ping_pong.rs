//! Latency exploration: ping every node from corner node 0 and print the
//! measured round-trip latency against the 2-cycles/hop model — a
//! miniature of the paper's Figure 2.
//!
//! Run with: `cargo run -p jm-examples --bin ping_pong`

use jm_asm::{hdr, Builder, Region};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::{MeshDims, MsgPriority, NodeId, RouteWord, Word};
use jm_machine::{JMachine, MachineConfig, StartPolicy};
use jm_runtime::rpc;

fn program() -> Result<jm_asm::Program, jm_asm::AsmError> {
    let mut b = Builder::new();
    b.data("pp", Region::Imem, vec![Word::int(0); 2]);
    b.label("main");
    b.load_seg(A0, "pp");
    b.load_seg(A1, rpc::FLAG);
    b.mov(MemRef::disp(A1, 0), 0);
    b.mov(R2, Special::Cycle);
    b.send(MsgPriority::P0, MemRef::disp(A0, 0));
    b.send2e(MsgPriority::P0, hdr("rpc_ping", 2), Special::Nnr);
    b.label("wait");
    b.mov(R1, MemRef::disp(A1, 0));
    b.bz(R1, "wait");
    b.mov(R3, Special::Cycle);
    b.alu(jm_isa::AluOp::Sub, R3, R3, R2);
    b.mov(MemRef::disp(A0, 1), R3);
    b.halt();
    b.entry("main");
    rpc::install(&mut b);
    b.assemble()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = MeshDims::new(4, 4, 4);
    println!("round-trip ping latency from node 0 on a {dims} machine:");
    println!("{:>6} {:>6} {:>8}", "node", "hops", "cycles");
    for target in 0..dims.nodes() {
        let p = program()?;
        let pp = p.segment("pp");
        let mut m = JMachine::new(p, MachineConfig::with_dims(dims).start(StartPolicy::Node0));
        let coord = dims.coord(NodeId(target));
        m.write_word(NodeId(0), pp.base, RouteWord::new(coord).to_word());
        m.run_until_quiescent(100_000)?;
        let cycles = m.read_word(NodeId(0), pp.base + 1).as_i32();
        let hops = dims.coord(NodeId(0)).hops_to(coord);
        if target % 7 == 0 || hops >= 8 {
            println!("{target:>6} {hops:>6} {cycles:>8}");
        }
    }
    println!("\nslope should be ~2 cycles/hop (1 cycle/hop each way) — paper Figure 2");
    Ok(())
}
