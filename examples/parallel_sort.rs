//! Parallel radix sort on a simulated J-Machine: the paper's "fine-grained
//! style" with one 3-word message per key, validated against a host sort.
//!
//! Run with: `cargo run --release -p jm-examples --bin parallel_sort [keys] [nodes]`

use jm_apps::radix::{self, RadixConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let keys: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2048);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let cfg = RadixConfig { keys, seed: 0xfeed };

    println!("sorting {keys} 28-bit keys on {nodes} nodes (7 passes of 4 bits)…");
    let run = radix::run(nodes, &cfg, 4_000_000_000)?;
    println!(
        "sorted and validated in {} cycles ({:.2} ms at 12.5 MHz)",
        run.cycles,
        run.stats.millis()
    );
    println!(
        "{} messages carried every key to its slot; {} send faults under backpressure",
        run.stats.net.delivered_msgs, run.stats.nodes.send_faults
    );
    jm_examples::print_summary(&run.stats);
    Ok(())
}
