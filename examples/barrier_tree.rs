//! Global synchronization two ways: the dissemination barrier of the
//! paper's Table 3 and the binary combining tree, racing across machine
//! sizes.
//!
//! Run with: `cargo run --release -p jm-examples --bin barrier_tree`

use jm_asm::{hdr, Builder, Region};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::{NodeId, Word};
use jm_machine::{JMachine, MachineConfig, StartPolicy};
use jm_runtime::{barrier, nnr, tree};

/// Barrier benchmark program: each node enters once; node 0 records the
/// completion cycle.
fn barrier_program() -> jm_asm::Program {
    let mut b = Builder::new();
    b.data("out", Region::Imem, vec![Word::int(0)]);
    b.label("main");
    b.mov(R0, hdr("done", 1));
    b.call(barrier::BAR_ENTER);
    b.suspend();
    b.label("done");
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), Special::Cycle);
    b.suspend();
    b.entry("main");
    barrier::install(&mut b);
    nnr::install(&mut b);
    b.assemble().unwrap()
}

/// Tree benchmark: every node contributes 1; root receives node count.
fn tree_program() -> jm_asm::Program {
    let mut b = Builder::new();
    b.data("out", Region::Imem, vec![Word::int(0), Word::int(0)]);
    b.label("main");
    b.call(tree::TREE_INIT);
    b.movi(R0, 1);
    b.call(tree::TREE_ADD);
    b.suspend();
    b.label("sum_done");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), Special::Cycle);
    b.mov(MemRef::disp(A0, 1), R0);
    b.suspend();
    b.entry("main");
    tree::install(&mut b, "sum_done");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>16} {:>16}",
        "nodes", "barrier (cyc)", "tree sum (cyc)"
    );
    for k in 1..=9u32 {
        let nodes = 1 << k;
        let p = barrier_program();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
        m.run_until_quiescent(10_000_000)?;
        let bar_cycles = m.read_word(NodeId(0), out.base).as_i32();

        let p = tree_program();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
        m.run_until_quiescent(10_000_000)?;
        let tree_cycles = m.read_word(NodeId(0), out.base).as_i32();
        let total = m.read_word(NodeId(0), out.base + 1).as_i32();
        assert_eq!(total, nodes as i32);

        println!("{nodes:>6} {bar_cycles:>16} {tree_cycles:>16}");
    }
    println!("\nboth scale logarithmically; the dissemination barrier needs no");
    println!("root-to-leaf broadcast, the tree also produces a global reduction");
    Ok(())
}
