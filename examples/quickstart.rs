//! Quickstart: assemble a tiny SPMD program, boot a 64-node J-Machine, and
//! exchange a remote procedure call.
//!
//! Run with: `cargo run -p jm-examples --bin quickstart`

use jm_asm::{hdr, Builder, Region};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::{MsgPriority, NodeId};
use jm_machine::{JMachine, MachineConfig, StartPolicy};
use jm_runtime::nnr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every node runs `main`: it computes a route to its successor (the
    // software "NNR calculation" of the paper) and sends it a greeting; the
    // `greet` handler stores the received value.
    let mut b = Builder::new();
    b.reserve("inbox", Region::Imem, 1);

    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(jm_isa::AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(jm_isa::StatClass::Comm);
    b.send(MsgPriority::P0, R0); // route word first
    b.send2e(MsgPriority::P0, hdr("greet", 2), Special::Nid); // then payload
    b.suspend();

    b.label("greet");
    b.mov(R0, MemRef::disp(A3, 1)); // read the argument from the message
    b.load_seg(A0, "inbox");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    let program = b.assemble()?;

    let mut machine = JMachine::new(program, MachineConfig::new(64).start(StartPolicy::AllNodes));
    let cycles = machine.run_until_quiescent(1_000_000)?;
    println!("64-node machine quiesced in {cycles} cycles");

    let inbox = machine.program().segment("inbox");
    for node in [0u32, 1, 33, 63] {
        let got = machine.read_word(NodeId(node), inbox.base).as_i32();
        let expected = (node as i32 + 63) % 64;
        assert_eq!(got, expected);
        println!("node {node:>2} received greeting from node {got}");
    }
    jm_examples::print_summary(&machine.stats());
    Ok(())
}
