//! Integration-test crate for the jmsim workspace.
//!
//! The interesting contents live in `tests/`; this library only hosts shared
//! helpers used by several integration-test binaries.

/// Builds a small deterministic seed for integration tests from a label, so
/// each test gets a distinct but reproducible random stream.
pub fn seed_from_label(label: &str) -> u64 {
    // FNV-1a, good enough for deriving distinct seeds from short names.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_per_label() {
        assert_ne!(seed_from_label("a"), seed_from_label("b"));
        assert_eq!(seed_from_label("lcs"), seed_from_label("lcs"));
    }
}
