//! Differential tests for the load-dominated hot path: the scheduler's
//! dense/sparse scan switch and the network's wormhole bulk-advance fast
//! path are pure performance mechanisms, so every observable — quiescence
//! cycle, full machine statistics (including fault counters), final memory,
//! and the lifecycle trace hash — must be bit-identical whichever mode is
//! forced and whether or not the bulk path is eligible.
//!
//! Three workload shapes bracket the mechanisms:
//!
//! * a single token circulating a ring (idle-dominated) — the network is
//!   empty at every send, so the bulk path engages on every hop;
//! * every node launching a token at once (load-dominated) — later sends
//!   arrive while a bulk message is still streaming, forcing the
//!   materialize-on-interference path that reconstructs buffered flits;
//! * the same storm under a seeded fault plan with a mid-run router-stall
//!   window — the bulk path must decline entirely (its closed-form timing
//!   law does not model blocked moves) and fall back to flit-by-flit
//!   advancement without double-counting any `FaultStats`.

use jm_asm::{hdr, Builder, Program};
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{
    Engine, FaultSpec, FaultWindow, JMachine, MachineConfig, MachineStats, SchedMode, StartPolicy,
};
use jm_runtime::nnr;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    outcome: Result<u64, String>,
    stats: MachineStats,
    memory: Vec<Vec<Word>>,
}

/// Runs `program` under `config` and records every observable.
fn observe(program: Program, config: MachineConfig, max_cycles: u64) -> Observation {
    let mut m = JMachine::new(program, config);
    let outcome = m
        .run_until_quiescent(max_cycles)
        .map_err(|e| format!("{e:?}"));
    let mut memory = Vec::new();
    for id in 0..m.node_count() {
        let node = m.node(NodeId(id));
        let mut words = Vec::new();
        for block in &m.program().data {
            words.extend(node.dump_mem(block.base, block.len));
        }
        memory.push(words);
    }
    Observation {
        outcome,
        stats: m.stats(),
        memory,
    }
}

/// Token-ring program. With `all_nodes` false only node 0 launches a token
/// (one message in flight at a time — the bulk path's home regime); with it
/// true every node launches one, so tokens stream past each other and any
/// in-progress bulk message is interrupted by new injections.
fn ring_program(rounds: i32, all_nodes: bool) -> Program {
    let mut b = Builder::new();
    b.data("acc", jm_asm::Region::Imem, vec![Word::int(0)]);
    b.reserve("next_route", jm_asm::Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "next_route");
    b.mov(MemRef::disp(A0, 0), R0);
    if !all_nodes {
        b.mov(R0, Special::Nid);
        b.bnz(R0, "main_done");
    }
    b.mov(R1, Special::NNodes);
    b.alu(AluOp::Mul, R1, R1, rounds);
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("token");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "acc");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "token_done");
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("token_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

fn base_config(nodes: u32) -> MachineConfig {
    MachineConfig::new(nodes).start(StartPolicy::AllNodes)
}

/// The scan-mode switch (event-driven active-set vs dense full-scan) is a
/// scheduling strategy, not a semantic: forcing either extreme must
/// reproduce the adaptive run and the naive reference bit for bit, on the
/// serial event engine and on real sharded workers.
#[test]
fn sched_modes_bit_identical() {
    let nodes = 64; // single 64-node shard: over the dense-mode floor
    let max = 1_000_000;
    let baseline = observe(ring_program(2, true), base_config(nodes), max);
    let variants: &[(Engine, SchedMode)] = &[
        (Engine::Naive, SchedMode::ForcedScan),
        (Engine::Event, SchedMode::Auto),
        (Engine::Event, SchedMode::ForcedEvent),
        (Engine::Event, SchedMode::ForcedScan),
        (Engine::Parallel(2), SchedMode::Auto),
        (Engine::Parallel(2), SchedMode::ForcedScan),
        (Engine::Parallel(4), SchedMode::ForcedEvent),
    ];
    for &(engine, sched) in variants {
        let got = observe(
            ring_program(2, true),
            base_config(nodes).engine(engine).sched_mode(sched),
            max,
        );
        assert_eq!(baseline, got, "{engine:?}/{sched:?} diverged from baseline");
    }
}

/// One token, empty network at every send: the bulk fast path engages on
/// every hop. Disabling it must change nothing observable.
#[test]
fn bulk_advance_bit_identical_when_engaged() {
    let nodes = 16;
    let max = 1_000_000;
    for engine in [Engine::Naive, Engine::Event] {
        let mut off = base_config(nodes).engine(engine);
        off.net.bulk = false;
        let with_bulk = observe(
            ring_program(3, false),
            base_config(nodes).engine(engine),
            max,
        );
        let without = observe(ring_program(3, false), off, max);
        assert_eq!(with_bulk, without, "{engine:?}: bulk on/off diverged");
    }
}

/// All nodes inject at once: a committed bulk message is still streaming
/// when the next send arrives, so the shard must materialize the in-flight
/// flits back into the channel arena at their law-given positions before
/// the new traffic contends with them.
#[test]
fn bulk_interference_materializes_exactly() {
    let nodes = 16;
    let max = 1_000_000;
    for engine in [Engine::Naive, Engine::Event] {
        let mut off = base_config(nodes).engine(engine);
        off.net.bulk = false;
        let with_bulk = observe(
            ring_program(3, true),
            base_config(nodes).engine(engine),
            max,
        );
        let without = observe(ring_program(3, true), off, max);
        assert_eq!(with_bulk, without, "{engine:?}: interference run diverged");
    }
    // And the storm itself must match the naive reference on every engine
    // (the parallel engine shards the mesh, so it never takes the bulk
    // path — agreement proves the closed-form timing law exact).
    let baseline = observe(ring_program(3, true), base_config(nodes), max);
    for engine in [Engine::Event, Engine::Parallel(2), Engine::Parallel(4)] {
        let got = observe(
            ring_program(3, true),
            base_config(nodes).engine(engine),
            max,
        );
        assert_eq!(baseline, got, "{engine:?} diverged from naive");
    }
}

/// A mid-run router stall plus flaky links: the bulk path's preconditions
/// fail (a fault plan is armed), so every flit moves the slow way. Bulk
/// on/off must agree on everything — including `FaultStats`, proving no
/// blocked move or inject stall is counted twice — and the plan must have
/// actually fired, or the test is vacuous.
#[test]
fn bulk_declines_under_fault_windows() {
    let nodes = 16;
    let max = 1_000_000;
    let spec = FaultSpec::new(11)
        .flaky(5_000)
        .window(FaultWindow::router_stall(5, 40, 400));
    for engine in [Engine::Naive, Engine::Event] {
        let mut off = base_config(nodes).engine(engine).fault(spec);
        off.net.bulk = false;
        let with_bulk = observe(
            ring_program(3, true),
            base_config(nodes).engine(engine).fault(spec),
            max,
        );
        let without = observe(ring_program(3, true), off, max);
        assert_eq!(with_bulk, without, "{engine:?}: faulted run diverged");
        assert!(
            with_bulk.stats.net.faults.blocked_moves > 0,
            "{engine:?}: fault plan never fired — the differential is vacuous"
        );
    }
}

/// Lifecycle tracing observes individual flit hops and deliveries; the bulk
/// path synthesizes those events per cycle from its timing law instead of
/// from buffer moves, and the two streams must hash identically.
#[test]
fn bulk_trace_hash_identical() {
    let nodes = 16;
    let max = 1_000_000;
    let run = |bulk: bool| {
        let mut config = base_config(nodes).engine(Engine::Event).traced();
        config.net.bulk = bulk;
        let mut m = JMachine::new(ring_program(3, false), config);
        let cycles = m.run_until_quiescent(max).expect("ring quiesces");
        let trace = m.take_trace().expect("tracing was enabled");
        (cycles, m.stats(), jm_trace::hash(&trace))
    };
    let (cycles_on, stats_on, hash_on) = run(true);
    let (cycles_off, stats_off, hash_off) = run(false);
    assert_eq!(cycles_on, cycles_off, "quiescence cycle diverged");
    assert_eq!(stats_on, stats_off, "statistics diverged");
    assert_eq!(hash_on, hash_off, "trace hash diverged");
}
