//! Differential tests for the synthetic-traffic layer: every destination
//! pattern must produce **bit-identical** runs across the naive, event, and
//! parallel engines (threads ∈ {1, 2, 4}), at quantum auto and quantum 1,
//! under a chaos fault plan, and with the wormhole bulk-advance fast path
//! toggled off. The injection process is a pure function of
//! `(seed, node, cycle)` and hooks into `step_cycle` before any routing
//! work, so the accept/drop decision at each node's inject FIFO depends
//! only on architectural state — never on engine, shard cut, or quantum.

use jm_asm::{Builder, Program, Region};
use jm_isa::node::NodeId;
use jm_isa::operand::MemRef;
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_isa::MeshDims;
use jm_machine::{
    Engine, FaultSpec, JMachine, MachineConfig, MachineStats, StartPolicy, TrafficPattern,
    TrafficSpec,
};

/// Every engine under differential test, naive reference first.
const ENGINES: [Engine; 5] = [
    Engine::Naive,
    Engine::Event,
    Engine::Parallel(1),
    Engine::Parallel(2),
    Engine::Parallel(4),
];

/// Parallel-engine quanta exercised per engine: auto and the pathological
/// one-cycle quantum (maximum exchange frequency).
const QUANTA: [u32; 2] = [0, 1];

/// All five destination patterns.
const PATTERNS: [TrafficPattern; 5] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::Transpose,
    TrafficPattern::BitReversal,
    TrafficPattern::Hotspot {
        weight_ppm: 300_000,
    },
    TrafficPattern::NearestNeighbor,
];

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    /// `Ok(cycles)` or the error's debug rendering.
    outcome: Result<u64, String>,
    /// Aggregated statistics (includes traffic offered/accepted/dropped).
    stats: MachineStats,
    /// Per-node contents of every declared data block.
    memory: Vec<Vec<Word>>,
}

/// A sink program: generated messages dispatch `sink`, which accumulates
/// the first payload word into a per-node counter — enough real handler
/// work that a lost or reordered message corrupts visible memory.
fn sink_program() -> Program {
    let mut b = Builder::new();
    b.data("acc", Region::Imem, vec![Word::int(0)]);
    b.label("sink");
    b.load_seg(A0, "acc");
    b.mov(R0, MemRef::disp(A0, 0));
    b.mov(R1, MemRef::disp(A3, 1));
    b.alu(jm_isa::instr::AluOp::Add, R0, R0, R1);
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    b.assemble().unwrap()
}

/// Base config for the suite: a 2×2×8 mesh so `Parallel(4)` gets four real
/// shards (shard count is clamped to z/2), with the traffic spec's handler
/// resolved against the assembled sink program.
fn traffic_config(program: &Program, spec: TrafficSpec) -> MachineConfig {
    MachineConfig::with_dims(MeshDims::new(2, 2, 8))
        .start(StartPolicy::None)
        .traffic(spec.handler(program.handler("sink")).msg_words(3))
}

/// Runs the sink program under `engine`/`quantum` and records every
/// observable.
fn observe(config: MachineConfig, engine: Engine, quantum: u32, max_cycles: u64) -> Observation {
    let mut m = JMachine::new(sink_program(), config.engine(engine).quantum(quantum));
    let outcome = m
        .run_until_quiescent(max_cycles)
        .map_err(|e| format!("{e:?}"));
    let mut memory = Vec::new();
    for id in 0..m.node_count() {
        let node = m.node(NodeId(id));
        let mut words = Vec::new();
        for block in &m.program().data {
            words.extend(node.dump_mem(block.base, block.len));
        }
        memory.push(words);
    }
    Observation {
        outcome,
        stats: m.stats(),
        memory,
    }
}

/// Runs the workload on every engine × quantum and asserts bit-identical
/// observables against the naive reference.
fn assert_equivalent(label: &str, config: MachineConfig, max_cycles: u64) -> Observation {
    let naive = observe(config, ENGINES[0], 0, max_cycles);
    for engine in &ENGINES[1..] {
        for quantum in QUANTA {
            let other = observe(config, *engine, quantum, max_cycles);
            assert_eq!(
                naive, other,
                "{label}/{engine:?}/q{quantum}: run diverged from naive"
            );
        }
    }
    naive
}

#[test]
fn all_patterns_are_engine_exact() {
    let program = sink_program();
    for pattern in PATTERNS {
        let spec = TrafficSpec::new(7)
            .pattern(pattern)
            .load(200_000)
            .window(0, 400);
        let obs = assert_equivalent(pattern.label(), traffic_config(&program, spec), 50_000);
        assert!(
            obs.outcome.is_ok(),
            "{}: {:?}",
            pattern.label(),
            obs.outcome
        );
        let traffic = obs.stats.net.traffic;
        assert!(traffic.offered_msgs > 0, "{}: no traffic", pattern.label());
        assert_eq!(
            traffic.offered_msgs,
            traffic.accepted_msgs + traffic.dropped_msgs,
            "{}: offered != accepted + dropped",
            pattern.label()
        );
        // Every accepted message reached its sink: nothing in flight after
        // quiescence, so network delivery count matches acceptance.
        assert_eq!(obs.stats.net.delivered_msgs, traffic.accepted_msgs);
    }
}

#[test]
fn traffic_under_chaos_fault_plan_is_engine_exact() {
    // Flaky links retry, corrupt messages are dropped at checksum check —
    // both perturb timing heavily, neither may perturb it differently per
    // engine. Bit reversal maximizes cross-mesh (multi-shard) routes.
    let program = sink_program();
    let spec = TrafficSpec::new(11)
        .pattern(TrafficPattern::BitReversal)
        .load(200_000)
        .window(0, 400);
    let fault = FaultSpec::new(5)
        .flaky(30_000)
        .corrupt(8_000)
        .checksums(true);
    let obs = assert_equivalent("chaos", traffic_config(&program, spec).fault(fault), 50_000);
    assert!(obs.outcome.is_ok(), "{:?}", obs.outcome);
    assert!(obs.stats.net.traffic.offered_msgs > 0);
    assert!(
        obs.stats.net.faults.blocked_moves > 0,
        "chaos plan never blocked a flit move"
    );
}

#[test]
fn traffic_with_bulk_advance_disabled_is_engine_exact() {
    // The wormhole bulk-advance fast path must be a pure optimization:
    // disabling it may not change a single observable, and the toggled
    // config must still be engine-exact.
    let program = sink_program();
    let spec = TrafficSpec::new(7)
        .pattern(TrafficPattern::Transpose)
        .load(150_000)
        .window(0, 400);
    let mut config = traffic_config(&program, spec);
    let with_bulk = assert_equivalent("bulk-on", config, 50_000);
    config.net.bulk = false;
    let without_bulk = assert_equivalent("bulk-off", config, 50_000);
    assert_eq!(with_bulk, without_bulk, "bulk-advance changed observables");
    assert!(with_bulk.stats.net.traffic.offered_msgs > 0);
}

#[test]
fn future_traffic_window_defeats_idle_skip() {
    // StartPolicy::None and a window starting at cycle 200: the machine is
    // completely idle until the window opens, so quiescence detection and
    // the idle fast-forward must treat the pending window as a scheduled
    // wake-up — on every engine. A machine that quiesces at cycle 0 never
    // generates the traffic at all.
    let program = sink_program();
    let spec = TrafficSpec::new(3)
        .pattern(TrafficPattern::UniformRandom)
        .load(400_000)
        .window(200, 260);
    let obs = assert_equivalent("future-window", traffic_config(&program, spec), 50_000);
    let cycles = obs.outcome.expect("future-window run failed");
    assert!(
        cycles >= 200,
        "machine quiesced at cycle {cycles}, before the traffic window opened"
    );
    assert!(obs.stats.net.traffic.accepted_msgs > 0);
    assert_eq!(
        obs.stats.net.delivered_msgs,
        obs.stats.net.traffic.accepted_msgs
    );
}

#[test]
fn saturating_load_backpressures_deterministically() {
    // At an absurd offered load the inject FIFOs overflow and messages are
    // dropped; the drop counter is part of the differential observation, so
    // drops must land on the same (node, cycle) pairs everywhere.
    let program = sink_program();
    let spec = TrafficSpec::new(13)
        .pattern(TrafficPattern::Hotspot {
            weight_ppm: 500_000,
        })
        .load(900_000)
        .window(0, 300);
    let obs = assert_equivalent("saturation", traffic_config(&program, spec), 100_000);
    assert!(obs.outcome.is_ok(), "{:?}", obs.outcome);
    let traffic = obs.stats.net.traffic;
    assert!(
        traffic.dropped_msgs > 0,
        "saturating load never backpressured (offered {}, accepted {})",
        traffic.offered_msgs,
        traffic.accepted_msgs
    );
}
