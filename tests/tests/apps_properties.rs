//! Randomized integration tests: the applications produce correct answers
//! for arbitrary inputs and machine sizes. Seeded with the in-tree PRNG so
//! the suite runs hermetically and reproducibly.

use jm_apps::{lcs, nqueens, radix, tsp};
use jm_prng::Prng;

#[test]
fn radix_sorts_arbitrary_inputs() {
    for case in 0..4u64 {
        let mut g = Prng::from_label("radix_sorts", case);
        let nodes = 1u32 << g.range_u32(0, 4);
        let keys = 1u32 << g.range_u32(5, 8);
        let cfg = radix::RadixConfig {
            keys,
            seed: g.next_u64(),
        };
        radix::run(nodes, &cfg, 500_000_000)
            .unwrap_or_else(|e| panic!("case {case} ({nodes} nodes, {keys} keys): {e}"));
    }
}

#[test]
fn lcs_matches_reference_for_arbitrary_strings() {
    for case in 0..4u64 {
        let mut g = Prng::from_label("lcs_matches", case);
        let nodes = 1u32 << g.range_u32(0, 4);
        let cfg = lcs::LcsConfig {
            a_len: 32.max(nodes),
            b_len: 48,
            seed: g.next_u64(),
            alphabet: g.range_u32(2, 6) as u8,
        };
        lcs::run(nodes, &cfg, 500_000_000)
            .unwrap_or_else(|e| panic!("case {case} ({nodes} nodes): {e}"));
    }
}

#[test]
fn tsp_finds_the_optimum_for_arbitrary_matrices() {
    for case in 0..4u64 {
        let mut g = Prng::from_label("tsp_optimum", case);
        let nodes = 1u32 << g.range_u32(0, 4);
        let cfg = tsp::TspConfig {
            cities: 6,
            seed: g.next_u64(),
            task_depth: None,
            yield_every: 16,
        };
        tsp::run(nodes, &cfg, 500_000_000)
            .unwrap_or_else(|e| panic!("case {case} ({nodes} nodes): {e}"));
    }
}

#[test]
fn nqueens_counts_are_right_for_all_depths() {
    // Sweep the expansion-depth knob: the answer must never change.
    for depth in 1..=4 {
        let cfg = nqueens::NqConfig {
            n: 7,
            expand_depth: Some(depth),
        };
        let run = nqueens::run(4, &cfg, 500_000_000).unwrap();
        assert_eq!(run.solutions, 40);
        assert_eq!(run.tasks, nqueens::prefix_count(7, depth));
    }
}

#[test]
fn tsp_yield_period_does_not_change_the_answer() {
    // The CST-style suspension period is a performance knob only.
    let mut costs = Vec::new();
    for yield_every in [4u32, 64, 4096] {
        let cfg = tsp::TspConfig {
            cities: 7,
            seed: 99,
            task_depth: None,
            yield_every,
        };
        let run = tsp::run(4, &cfg, 500_000_000).unwrap();
        costs.push(run.best);
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
}
