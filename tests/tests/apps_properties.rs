//! Property-based integration tests: the applications produce correct
//! answers for arbitrary inputs and machine sizes.

use jm_apps::{lcs, nqueens, radix, tsp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn radix_sorts_arbitrary_inputs(seed in any::<u64>(), nodes_pow in 0u32..4, keys_pow in 5u32..8) {
        let nodes = 1u32 << nodes_pow;
        let keys = 1u32 << keys_pow;
        let cfg = radix::RadixConfig { keys, seed };
        radix::run(nodes, &cfg, 500_000_000).unwrap();
    }

    #[test]
    fn lcs_matches_reference_for_arbitrary_strings(seed in any::<u64>(),
                                                   alphabet in 2u8..6,
                                                   nodes_pow in 0u32..4) {
        let nodes = 1u32 << nodes_pow;
        let cfg = lcs::LcsConfig {
            a_len: 32.max(nodes),
            b_len: 48,
            seed,
            alphabet,
        };
        lcs::run(nodes, &cfg, 500_000_000).unwrap();
    }

    #[test]
    fn tsp_finds_the_optimum_for_arbitrary_matrices(seed in any::<u64>(), nodes_pow in 0u32..4) {
        let nodes = 1u32 << nodes_pow;
        let cfg = tsp::TspConfig {
            cities: 6,
            seed,
            task_depth: None,
            yield_every: 16,
        };
        tsp::run(nodes, &cfg, 500_000_000).unwrap();
    }
}

#[test]
fn nqueens_counts_are_right_for_all_depths() {
    // Sweep the expansion-depth knob: the answer must never change.
    for depth in 1..=4 {
        let cfg = nqueens::NqConfig {
            n: 7,
            expand_depth: Some(depth),
        };
        let run = nqueens::run(4, &cfg, 500_000_000).unwrap();
        assert_eq!(run.solutions, 40);
        assert_eq!(run.tasks, nqueens::prefix_count(7, depth));
    }
}

#[test]
fn tsp_yield_period_does_not_change_the_answer() {
    // The CST-style suspension period is a performance knob only.
    let mut costs = Vec::new();
    for yield_every in [4u32, 64, 4096] {
        let cfg = tsp::TspConfig {
            cities: 7,
            seed: 99,
            task_depth: None,
            yield_every,
        };
        let run = tsp::run(4, &cfg, 500_000_000).unwrap();
        costs.push(run.best);
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
}
