//! Lifecycle-tracing integration tests.
//!
//! A 4×4 mesh runs a many-to-one RPC workload (every node sends its id to
//! node 0) with tracing enabled, and the assembled trace must tell a
//! causally consistent story: every message's events strictly ordered
//! (inject < deliver < dispatch < handler-end), hop counts equal to mesh
//! distance, and the latency decomposition summing exactly to the
//! end-to-end latency. Tracing must also be *purely observational*: the
//! same workload with tracing on and off produces bit-identical machine
//! statistics on both engines, and two traced runs produce byte-identical
//! trace summaries.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::MsgPriority;
use jm_isa::node::{MeshDims, NodeId};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_machine::{Engine, JMachine, MachineConfig, MachineTrace, StartPolicy, TraceConfig};
use jm_trace::{chrome_json, hash, summary_json};

/// Every node sends `(recv, nid)` to node 0; node 0's handler stores the
/// latest sender id.
fn gather_program() -> Program {
    let mut b = Builder::new();
    b.reserve("last", Region::Imem, 1);

    b.label("main");
    // Route word for node (0,0,0): zero coordinate bits, route tag.
    b.movi(R0, 0);
    b.wtag(R0, R0, Tag::Route.bits() as i32);
    b.send(MsgPriority::P0, R0);
    b.send2e(MsgPriority::P0, hdr("recv", 2), Special::Nid);
    b.suspend();

    b.label("recv");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "last");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();

    b.entry("main");
    b.assemble().unwrap()
}

fn mesh() -> MeshDims {
    MeshDims::new(4, 4, 1)
}

fn config(engine: Engine, traced: bool) -> MachineConfig {
    let mut c = MachineConfig::with_dims(mesh())
        .start(StartPolicy::AllNodes)
        .engine(engine);
    if traced {
        c = c.trace(TraceConfig::on().sample_every(16));
    }
    c
}

/// Runs the gather workload to quiescence and returns the machine.
fn run(engine: Engine, traced: bool) -> JMachine {
    let mut m = JMachine::new(gather_program(), config(engine, traced));
    m.run_until_quiescent(100_000).expect("workload finished");
    m
}

fn traced_run(engine: Engine) -> (JMachine, MachineTrace) {
    let mut m = run(engine, true);
    let trace = m.take_trace().expect("tracing was enabled");
    (m, trace)
}

#[test]
fn untraced_machine_has_no_trace() {
    let mut m = run(Engine::Event, false);
    assert!(m.take_trace().is_none());
}

#[test]
fn lifecycle_events_are_strictly_ordered() {
    let (m, trace) = traced_run(Engine::Event);
    let msgs = trace.messages();
    // One message per node, all injected and dispatched.
    assert_eq!(msgs.len() as u64, m.stats().net.injected_msgs);
    assert_eq!(msgs.len(), 16);
    let dims = mesh();
    for msg in &msgs {
        let deliver = msg.deliver.expect("delivered");
        let dispatch = msg.dispatch.expect("dispatched");
        let handler_end = msg.handler_end.expect("handler ended");
        assert!(msg.inject < deliver, "{msg:?}");
        assert!(deliver < dispatch, "{msg:?}");
        assert!(dispatch < handler_end, "{msg:?}");
        assert_eq!(msg.dst, NodeId(0));
        // The head flit crosses one channel per hop of mesh distance.
        let c = dims.coord(msg.src);
        let distance = u32::from(c.x) + u32::from(c.y) + u32::from(c.z);
        assert_eq!(msg.hops, distance, "{msg:?}");
    }
}

#[test]
fn decomposition_sums_to_end_to_end_latency() {
    let (_, trace) = traced_run(Engine::Event);
    for msg in trace.messages() {
        let t_net = msg.t_net().expect("net component");
        let t_queue = msg.t_queue().expect("queue component");
        let end_to_end = msg.end_to_end().expect("end to end");
        assert_eq!(t_net + t_queue, end_to_end, "{msg:?}");
        assert!(msg.t_handler().expect("handler component") > 0);
    }
    let b = trace.breakdown();
    assert_eq!(b.end_to_end.count(), 16);
    assert_eq!(b.net.count(), 16);
    assert_eq!(
        b.net.sum() + b.queue.sum(),
        b.end_to_end.sum(),
        "component sums must add up"
    );
}

#[test]
fn tracing_is_purely_observational() {
    // Bit-identical MachineStats with tracing on vs off, on both engines.
    for engine in [Engine::Event, Engine::Naive] {
        let plain = run(engine, false);
        let traced = run(engine, true);
        assert_eq!(
            plain.stats(),
            traced.stats(),
            "{engine:?}: tracing changed observable statistics"
        );
    }
    // Both engines see the same lifecycle (same per-message cycle stamps).
    let (_, ev) = traced_run(Engine::Event);
    let (_, na) = traced_run(Engine::Naive);
    assert_eq!(ev.messages(), na.messages());
}

#[test]
fn trace_summary_is_deterministic() {
    let (_, a) = traced_run(Engine::Event);
    let (_, b) = traced_run(Engine::Event);
    assert_eq!(hash(&a), hash(&b));
    assert_eq!(summary_json(&a), summary_json(&b));
}

#[test]
fn exports_are_well_formed() {
    let (_, trace) = traced_run(Engine::Event);
    assert!(!trace.samples.is_empty(), "sampling produced no points");
    assert!(trace.samples.windows(2).all(|w| w[0].cycle < w[1].cycle));

    let chrome = chrome_json(&trace);
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert!(chrome.contains(r#""ph":"X""#), "no complete spans");
    assert!(chrome.contains(r#""ph":"C""#), "no counter samples");
    assert!(chrome.contains("net msg#"));
    assert!(chrome.contains("queue msg#"));
    assert!(chrome.contains("handler@"));

    let summary = summary_json(&trace);
    assert!(summary.contains(r#""injected": 16"#));
    assert!(summary.contains(r#""dispatched": 16"#));
    assert!(summary.contains("\"trace_hash\""));
}
