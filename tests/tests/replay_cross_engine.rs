//! Cross-engine replay tests: a run recorded under one engine must
//! **verify clean** — every checkpoint hash matched — when re-executed
//! under any other engine, thread count, or quantum, because the replay
//! hash covers exactly the architectural state (registers, queues,
//! memory, router occupancy) and none of the engines' bookkeeping
//! (DESIGN.md §4.11). The suite records under `Engine::Event` and
//! replays under Naive and `Parallel(t)` for t ∈ {1, 2, 4} × quantum ∈
//! {auto, 1}, across the schedules most likely to break checkpoint
//! placement:
//!
//! * a mostly-idle token ring (idle crediting between checkpoints);
//! * an idle-skip ping-pong whose 50-cycle dispatch cost makes every
//!   fast-forward skip cross checkpoint boundaries;
//! * a chaos fault plan (flaky links, checksummed retries, link-down
//!   window) where a one-cycle divergence would reseed every later
//!   fault draw.
//!
//! It also proves the two localization claims end-to-end: an injected
//! single-cycle divergence in a 64-node chaos run is bisected to exactly
//! its cycle and component, and the checkpoint-interval digest composes
//! (the digest of `[a, c)` equals the digest of `[b, c)` seeded with the
//! digest of `[a, b)`).

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{
    Corruption, Engine, FaultSpec, FaultWindow, JMachine, MachineConfig, MachineFactory,
    StartPolicy,
};
use jm_mdp::{MdpConfig, TimingConfig};
use jm_replay::{Divergence, ReplayLog};
use jm_runtime::{nnr, reliable};

/// Token-ring workload (same shape as the quantum-sweep suite's): one
/// token circulates an id-ordered ring for `rounds` laps.
fn ring_program(rounds: i32) -> Program {
    let mut b = Builder::new();
    b.reserve("acc", Region::Imem, 1);
    b.reserve("next_route", Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "next_route");
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, "acc");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(R0, Special::Nid);
    b.bnz(R0, "main_done");
    b.mov(R1, Special::NNodes);
    b.alu(AluOp::Mul, R1, R1, rounds);
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("token");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "acc");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "token_done");
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("token_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

/// Ping-pong workload with a 50-cycle dispatch cost: every wake-up lands
/// at least 50 cycles out, so idle-skip fast-forwards cross checkpoint
/// boundaries (interval 64) many times per rally.
fn pingpong_program() -> Program {
    const VOLLEYS: i32 = 8;
    let mut b = Builder::new();
    b.reserve("hits", Region::Imem, 1);
    b.reserve("peer", Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.alu(AluOp::Xor, R0, R0, 1);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "peer");
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, "hits");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(R0, Special::Nid);
    b.alu(AluOp::And, R0, R0, 1);
    b.bnz(R0, "main_done");
    b.movi(R1, VOLLEYS);
    b.load_seg(A1, "peer");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("rally", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("rally");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "hits");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "rally_done");
    b.load_seg(A1, "peer");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("rally", 2), R1);
    b.label("rally_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

/// Records a fixed-length run of `program` under `config` and returns the
/// log (and the machine, for segment lookups).
fn record_fixed(program: Program, config: MachineConfig, interval: u64, cycles: u64) -> ReplayLog {
    let mut m = JMachine::new(program, config);
    m.record_replay(interval);
    m.run(cycles);
    m.finish_replay().expect("recording was armed")
}

/// Records a run-to-quiescence of `program` under `config`.
fn record_quiescent(program: Program, config: MachineConfig, interval: u64, max: u64) -> ReplayLog {
    let mut m = JMachine::new(program, config);
    m.record_replay(interval);
    m.run_until_quiescent(max).expect("workload quiesces");
    m.finish_replay().expect("recording was armed")
}

/// The cross-engine matrix: Naive plus every Parallel thread count under
/// the auto quantum and the maximally-coupled quantum of 1.
fn cross_factories() -> Vec<(String, MachineFactory)> {
    let mut v = vec![(
        "naive".to_string(),
        MachineFactory::recorded().engine(Engine::Naive),
    )];
    for t in [1u32, 2, 4] {
        for q in [0u32, 1] {
            v.push((
                format!("parallel-{t}/q{q}"),
                MachineFactory::recorded()
                    .engine(Engine::Parallel(t))
                    .quantum(q),
            ));
        }
    }
    v
}

/// Verifies `log` clean under every factory in the cross-engine matrix.
fn assert_clean_across_engines(label: &str, log: &ReplayLog) {
    assert!(
        log.checkpoints() >= 2,
        "{label}: too few checkpoints ({}) to be a meaningful replay",
        log.checkpoints()
    );
    for (name, factory) in cross_factories() {
        let report = jm_replay::verify(log, &factory);
        assert!(
            report.clean(),
            "{label}: replay under {name} diverged: {report}"
        );
        assert_eq!(
            report.checked,
            log.checkpoints() as u64,
            "{label}: {name} checked the wrong number of checkpoints"
        );
    }
}

#[test]
fn ring_replay_is_clean_across_engines_and_quanta() {
    let log = record_fixed(
        ring_program(50),
        MachineConfig::new(16)
            .start(StartPolicy::AllNodes)
            .engine(Engine::Event),
        256,
        3_000,
    );
    assert_eq!(log.end_cycle(), 3_000);
    assert_clean_across_engines("ring", &log);
}

#[test]
fn idle_skip_replay_is_clean_across_engines() {
    // Dispatch cost 50: every wake-up is ≥ 50 cycles out, so idle skips
    // cross the 64-cycle checkpoint interval on every rally. Recorded via
    // run-to-quiescence, exercising the chunked quiescent recording path.
    let mdp = MdpConfig {
        timing: TimingConfig {
            dispatch: 50,
            ..TimingConfig::default()
        },
        ..MdpConfig::default()
    };
    let log = record_quiescent(
        pingpong_program(),
        MachineConfig::new(16)
            .start(StartPolicy::AllNodes)
            .engine(Engine::Event)
            .mdp(mdp),
        64,
        1_000_000,
    );
    assert!(
        log.end_cycle() > 400,
        "workload too short to force boundary-crossing skips: {}",
        log.end_cycle()
    );
    assert_clean_across_engines("idle-skip", &log);
}

#[test]
fn chaos_fault_plan_replay_is_clean_across_engines() {
    // Fault draws are keyed by cycle and position (DESIGN.md §4.8), so a
    // single-cycle replay divergence would reseed every downstream draw
    // and fail loudly at the next checkpoint.
    let spec = FaultSpec::new(4242)
        .flaky(100_000)
        .checksums(true)
        .window(FaultWindow::link_down(0, 0, 100, 600));
    let log = record_quiescent(
        reliable::demo_program(3, 7),
        MachineConfig::new(8).engine(Engine::Event).fault(spec),
        128,
        1_000_000,
    );
    assert_clean_across_engines("chaos", &log);
}

#[test]
fn injected_divergence_in_64_node_chaos_run_is_bisected_to_cycle_and_component() {
    // The acceptance fixture: a 64-node run under a delay-fault chaos
    // plan, with a single unrecorded memory write injected at one cycle
    // of the *replayed* execution. The bisector must localize the
    // divergence to exactly that cycle and name exactly that node's
    // memory as the diverging component.
    let spec = FaultSpec::new(9)
        .flaky(50_000)
        .window(FaultWindow::link_down(0, 0, 500, 1_500))
        .window(FaultWindow::router_stall(3, 800, 1_200));
    let program = ring_program(200);
    let acc = program.segment("acc").base;
    let log = record_fixed(
        program,
        MachineConfig::new(64)
            .start(StartPolicy::AllNodes)
            .engine(Engine::Event)
            .fault(spec),
        512,
        4_000,
    );
    let corruption = Corruption {
        cycle: 1_234,
        node: NodeId(9),
        addr: acc,
        word: Word::int(999_999),
    };
    let target = MachineFactory::recorded()
        .engine(Engine::Parallel(4))
        .corrupt(corruption);
    let report = jm_replay::bisect(&log, &MachineFactory::recorded(), &target);
    match report.divergence {
        Divergence::Diverged {
            cycle,
            interval,
            ref components,
        } => {
            assert_eq!(cycle, 1_234, "bisection missed the injected cycle");
            assert!(
                interval.0 < 1_234 && 1_234 <= interval.1,
                "bisected interval {interval:?} does not bracket the injection"
            );
            let labels: Vec<&str> = components.iter().map(|c| c.label.as_str()).collect();
            assert_eq!(
                labels,
                ["node 9 mem"],
                "wrong diverging component set: {labels:?}"
            );
        }
        other => panic!("expected a genuine divergence, got {other:?}"),
    }
    assert!(report.probes > 0, "a 512-cycle interval needs halving");
}

#[test]
fn interval_digest_composes_on_a_real_log() {
    // FNV-1a composes over concatenation: for every checkpoint boundary
    // b, digest[0, end] == digest[b, end] seeded with digest[0, b). The
    // property is checked on a real recorded log, not a synthetic one.
    let log = record_fixed(
        ring_program(50),
        MachineConfig::new(16)
            .start(StartPolicy::AllNodes)
            .engine(Engine::Event),
        256,
        3_000,
    );
    let end = log.end_cycle() + 1;
    let whole = log.interval_digest(0, end);
    let mut splits = 0;
    for b in (0..end).step_by(97) {
        let left = log.interval_digest(0, b);
        assert_eq!(
            whole,
            log.interval_digest_from(left, b, end),
            "digest does not compose at split {b}"
        );
        splits += 1;
    }
    assert!(splits > 10);
    // And a three-way split, seeded twice.
    let a = log.interval_digest(0, 700);
    let ab = log.interval_digest_from(a, 700, 2_100);
    assert_eq!(whole, log.interval_digest_from(ab, 2_100, end));
}
