//! Differential tests: the event-driven and parallel engines must be
//! **cycle-exact** with the naive reference engine. For each workload every
//! engine — including `Parallel(threads)` for threads ∈ {1, 2, 4} — runs
//! the same program and every observable is compared: the
//! `run_until_quiescent` outcome (success cycle count or error), the
//! aggregated machine statistics (per-class cycles, per-handler counters,
//! network counters), and the final contents of every declared data block
//! on every node. Thread counts beyond the mesh's z extent are clamped, so
//! `Parallel(4)` on a 2×2×2 mesh re-checks the 2-shard cut while on a
//! 2×2×4 mesh it exercises four real worker threads.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_isa::{Coord, RouteWord};
use jm_machine::StartPolicy;
use jm_machine::{Engine, JMachine, MachineConfig, MachineStats};
use jm_mdp::MdpConfig;
use jm_runtime::nnr;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    /// `Ok(cycles)` or the error's debug rendering.
    outcome: Result<u64, String>,
    /// Aggregated statistics (includes final cycle count).
    stats: MachineStats,
    /// Per-node contents of every declared data block.
    memory: Vec<Vec<Word>>,
}

/// Runs `program` under `engine` and records every observable.
fn observe(
    program: Program,
    config: MachineConfig,
    engine: Engine,
    max_cycles: u64,
    setup: impl Fn(&mut JMachine),
) -> Observation {
    let mut m = JMachine::new(program, config.engine(engine));
    setup(&mut m);
    let outcome = m
        .run_until_quiescent(max_cycles)
        .map_err(|e| format!("{e:?}"));
    let mut memory = Vec::new();
    for id in 0..m.node_count() {
        let node = m.node(NodeId(id));
        let mut words = Vec::new();
        for block in &m.program().data {
            words.extend(node.dump_mem(block.base, block.len));
        }
        memory.push(words);
    }
    Observation {
        outcome,
        stats: m.stats(),
        memory,
    }
}

/// Every engine under differential test, naive reference first.
const ENGINES: [Engine; 5] = [
    Engine::Naive,
    Engine::Event,
    Engine::Parallel(1),
    Engine::Parallel(2),
    Engine::Parallel(4),
];

/// Runs the workload on every engine and asserts bit-identical observables.
fn assert_equivalent(
    label: &str,
    program: impl Fn() -> Program,
    config: MachineConfig,
    max_cycles: u64,
    setup: impl Fn(&mut JMachine),
) -> Observation {
    let naive = observe(program(), config, ENGINES[0], max_cycles, &setup);
    for engine in &ENGINES[1..] {
        let other = observe(program(), config, *engine, max_cycles, &setup);
        assert_eq!(
            naive.outcome, other.outcome,
            "{label}/{engine:?}: run outcome diverged"
        );
        assert_eq!(
            naive.stats, other.stats,
            "{label}/{engine:?}: statistics diverged"
        );
        assert_eq!(
            naive.memory, other.memory,
            "{label}/{engine:?}: final memory diverged"
        );
    }
    naive
}

/// Micro workload: a three-hop RPC chain with long idle stretches — node 0
/// asks the far corner to increment a value and store the reply.
fn rpc_program() -> Program {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("main");
    b.movi(R0, 0x421); // route to node (1,1,1) on a 2x2x2 mesh
    b.wtag(R0, R0, jm_isa::Tag::Route.bits() as i32);
    b.send(MsgPriority::P0, R0);
    b.send2(MsgPriority::P0, hdr("incr", 3), 41);
    b.sende(MsgPriority::P0, Special::Nnr);
    b.suspend();
    b.label("incr");
    b.mov(R0, MemRef::disp(A3, 1));
    b.addi(R0, R0, 1);
    b.send(MsgPriority::P0, MemRef::disp(A3, 2));
    b.send2e(MsgPriority::P0, hdr("store", 2), R0);
    b.suspend();
    b.label("store");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    b.entry("main");
    b.assemble().unwrap()
}

#[test]
fn micro_rpc_is_engine_exact() {
    let obs = assert_equivalent("rpc", rpc_program, MachineConfig::new(8), 10_000, |_| {});
    // Sanity: the workload did what it claims (value stored, 2 messages).
    assert_eq!(obs.stats.nodes.msgs_sent, 2);
    assert!(obs.outcome.is_ok());
}

/// Micro workload: every node circulates a token around an id-ordered ring,
/// keeping most nodes idle most of the time — the event engine's favorite
/// case, and the one where idle accounting is easiest to get wrong.
fn ring_program() -> Program {
    const ROUNDS: i32 = 3;
    let mut b = Builder::new();
    b.reserve("acc", Region::Imem, 1);
    b.reserve("next_route", Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "next_route");
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, "acc");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(R0, Special::Nid);
    b.bnz(R0, "main_done");
    b.mov(R1, Special::NNodes);
    b.alu(AluOp::Mul, R1, R1, ROUNDS);
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("token");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "acc");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "token_done");
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("token_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

#[test]
fn micro_ring_is_engine_exact() {
    let obs = assert_equivalent(
        "ring",
        ring_program,
        MachineConfig::new(16).start(StartPolicy::AllNodes),
        1_000_000,
        |_| {},
    );
    assert!(obs.outcome.is_ok());
}

#[test]
fn fixed_cycle_run_is_engine_exact() {
    // `run(n)` drives the parallel engine through its fixed-deadline mode
    // (no quiescence detection): stopping mid-workload must leave every
    // engine at the same cycle with the same statistics snapshot.
    let config = MachineConfig::new(16).start(StartPolicy::AllNodes);
    let mut snapshots = Vec::new();
    for engine in ENGINES {
        let mut m = JMachine::new(ring_program(), config.engine(engine));
        m.run(1_500);
        assert_eq!(m.cycle(), 1_500, "{engine:?}: wrong stop cycle");
        snapshots.push(m.stats());
    }
    for (engine, snap) in ENGINES.iter().zip(&snapshots).skip(1) {
        assert_eq!(&snapshots[0], snap, "fixed run: {engine:?} diverged");
    }
}

#[test]
fn host_delivery_wakeup_is_engine_exact() {
    // StartPolicy::None: nothing runs until the host injects work, so the
    // event engine must wake parked nodes on the host-delivery path.
    let program = || {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);
        b.label("fill");
        b.load_seg(A0, "out");
        b.mov(R0, MemRef::disp(A3, 1));
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();
        b.assemble().unwrap()
    };
    let obs = assert_equivalent(
        "host-delivery",
        program,
        MachineConfig::new(8).start(StartPolicy::None),
        10_000,
        |m| {
            for id in 0..8 {
                m.deliver_message(
                    NodeId(id),
                    MsgPriority::P0,
                    "fill",
                    &[Word::int(id as i32 * 7)],
                );
            }
        },
    );
    assert!(obs.outcome.is_ok());
    for (id, words) in obs.memory.iter().enumerate() {
        assert_eq!(words[0].as_i32(), id as i32 * 7);
    }
}

#[test]
fn timeout_and_idle_residue_are_engine_exact() {
    // Node 0 spins forever while seven nodes idle-park: the run must time
    // out at the same cycle with the same busy-node count, and the parked
    // nodes' skipped idle cycles must be credited in the stats snapshot.
    let program = || {
        let mut b = Builder::new();
        b.label("spin");
        b.br("spin");
        b.entry("spin");
        b.assemble().unwrap()
    };
    let obs = assert_equivalent(
        "timeout",
        program,
        MachineConfig::new(8), // Node0 policy: 7 nodes never work
        5_000,
        |_| {},
    );
    let err = obs.outcome.unwrap_err();
    assert!(err.contains("Timeout"), "expected timeout, got {err}");
    // All 8 nodes account every one of the 5000 cycles (spin or idle).
    assert_eq!(obs.stats.nodes.total_cycles(), 5_000 * 8);
}

/// Macro workload: the paper's radix sort, whole pipeline — setup writes
/// key strips into node memory, the run sorts, and both engines must agree
/// on every counter and the sorted output.
#[test]
fn macro_radix_is_engine_exact() {
    let cfg = jm_apps::radix::RadixConfig {
        keys: 128,
        seed: 11,
    };
    let expected = jm_apps::radix::reference(&cfg.generate());
    let program = || jm_apps::radix::program(&cfg, 8);
    let mut sorted_per_engine = Vec::new();
    for engine in ENGINES {
        let mut m = JMachine::new(
            program(),
            MachineConfig::new(8)
                .start(StartPolicy::AllNodes)
                .engine(engine),
        );
        jm_apps::radix::setup(&mut m, &cfg);
        let cycles = m.run_until_quiescent(50_000_000).unwrap();
        assert_eq!(jm_apps::radix::result(&m, &cfg), expected);
        sorted_per_engine.push((cycles, m.stats()));
    }
    for (engine, run) in ENGINES.iter().zip(&sorted_per_engine).skip(1) {
        assert_eq!(
            &sorted_per_engine[0], run,
            "radix: {engine:?} diverged from naive"
        );
    }
}

#[test]
fn ejection_backpressure_redelivery_is_engine_exact() {
    // Regression test for the queue-full → break → redeliver-next-cycle
    // pump path: a tiny P0 queue and a slow handler force the pump to
    // refuse deliveries, leaving words parked in the ejection FIFO until
    // the handler drains the queue. The event engine must keep the node in
    // the network's pending set across refusals (it may not "forget" the
    // parked words) and match the naive engine cycle for cycle.
    let program = || {
        let mut b = Builder::new();
        b.data("sum", Region::Imem, vec![Word::int(0)]);
        b.label("main");
        b.mov(R0, Special::Nid);
        b.bz(R0, "main_done");
        // Node 1 fires 6 five-word messages back to back at node 0.
        b.movi(R2, 6);
        b.label("volley");
        b.send(
            MsgPriority::P0,
            RouteWord::new(Coord::new(0, 0, 0)).to_word(),
        );
        b.send2(MsgPriority::P0, hdr("slow", 5), R2);
        b.send2(MsgPriority::P0, R2, R2);
        b.sende(MsgPriority::P0, R2);
        b.subi(R2, R2, 1);
        b.bnz(R2, "volley");
        b.label("main_done");
        b.suspend();
        // The handler burns cycles before retiring, so arrivals outpace
        // consumption and the queue stays full.
        b.label("slow");
        b.load_seg(A0, "sum");
        b.mov(R0, MemRef::disp(A0, 0));
        b.mov(R1, MemRef::disp(A3, 1));
        b.alu(AluOp::Add, R0, R0, R1);
        b.mov(MemRef::disp(A0, 0), R0);
        b.movi(R3, 40);
        b.label("burn");
        b.subi(R3, R3, 1);
        b.bnz(R3, "burn");
        b.suspend();
        b.entry("main");
        b.assemble().unwrap()
    };
    // A 10-word P0 queue holds at most two 5-word messages.
    let mdp = MdpConfig {
        queue0_words: 10,
        ..MdpConfig::default()
    };
    let config = MachineConfig::new(2).start(StartPolicy::AllNodes).mdp(mdp);
    let naive = observe(program(), config, Engine::Naive, 1_000_000, |_| {});
    for engine in &ENGINES[1..] {
        let other = observe(program(), config, *engine, 1_000_000, |_| {});
        assert_eq!(naive, other, "backpressure workload diverged on {engine:?}");
    }
    // The workload really exercised backpressure: every message arrived
    // and summed correctly, and deliveries were refused along the way.
    assert!(naive.outcome.is_ok(), "{:?}", naive.outcome);
    assert_eq!(naive.memory[0][0].as_i32(), 6 + 5 + 4 + 3 + 2 + 1);
    assert_eq!(naive.stats.nodes.msgs_received, 6);
}

#[test]
fn queue_full_redelivers_next_cycle() {
    // Unit-level check of the same pump path, observed directly: with the
    // handler stalled, a refused word must stay in the ejection FIFO and
    // land in the queue on a later cycle once space opens.
    let program = || {
        let mut b = Builder::new();
        b.label("main");
        b.mov(R0, Special::Nid);
        b.bz(R0, "main_done");
        b.movi(R2, 4);
        b.label("volley");
        b.send(
            MsgPriority::P0,
            RouteWord::new(Coord::new(0, 0, 0)).to_word(),
        );
        b.send2(MsgPriority::P0, hdr("slow", 3), R2);
        b.sende(MsgPriority::P0, R2);
        b.subi(R2, R2, 1);
        b.bnz(R2, "volley");
        b.label("main_done");
        b.suspend();
        b.label("slow");
        b.movi(R3, 60);
        b.label("burn");
        b.subi(R3, R3, 1);
        b.bnz(R3, "burn");
        b.suspend();
        b.entry("main");
        b.assemble().unwrap()
    };
    let mdp = MdpConfig {
        queue0_words: 6, // two 3-word messages
        ..MdpConfig::default()
    };
    let mut m = JMachine::new(
        program(),
        MachineConfig::new(2).start(StartPolicy::AllNodes).mdp(mdp),
    );
    m.run_until_quiescent(100_000).unwrap();
    let node0 = m.node(NodeId(0));
    assert!(
        node0.queue_refusals(MsgPriority::P0) > 0,
        "queue never refused a delivery — workload did not backpressure"
    );
    assert_eq!(node0.queue_high_water(MsgPriority::P0), 6);
    // Despite the refusals, every message was eventually re-delivered.
    assert_eq!(m.stats().nodes.msgs_received, 4);
    assert_eq!(m.stats().net.delivered_words, 4 * 3);
}
