//! Differential tests for the fault-injection subsystem (`jm-fault`).
//!
//! Two properties carry the whole design:
//!
//! * **Zero probability is free**: any fault plan that cannot fire — the
//!   explicit `none()` spec, a seeded spec with all-zero probabilities,
//!   or a plan whose only window lies beyond the run horizon — must leave
//!   every engine bit-identical to a run with no plan at all.
//! * **Faults are schedule-independent**: a plan that does fire injects
//!   the *same* faults at the same cycles on every engine, so the naive,
//!   event-driven, and parallel engines stay cycle-exact with each other
//!   even while links flap and messages are dropped.
//!
//! Every observable is compared: outcome, aggregated statistics (which
//! include the fault counters), and the final contents of every declared
//! data block on every node.

use jm_isa::consts::FaultKind;
use jm_isa::node::NodeId;
use jm_isa::word::Word;
use jm_machine::{Engine, FaultSpec, FaultWindow, JMachine, MachineConfig, MachineStats};
use jm_runtime::reliable;

const ENGINES: [Engine; 5] = [
    Engine::Naive,
    Engine::Event,
    Engine::Parallel(1),
    Engine::Parallel(2),
    Engine::Parallel(4),
];

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    outcome: Result<u64, String>,
    stats: MachineStats,
    memory: Vec<Vec<Word>>,
}

/// Runs the reliable-RPC demo (node 0 increments node 7's counter) under
/// `engine` with an optional fault spec and records every observable.
fn observe(engine: Engine, spec: Option<FaultSpec>, max_cycles: u64) -> Observation {
    let program = reliable::demo_program(3, 7);
    let mut config = MachineConfig::new(8).engine(engine);
    if let Some(spec) = spec {
        config = config.fault(spec);
    }
    let mut m = JMachine::new(program, config);
    let outcome = m
        .run_until_quiescent(max_cycles)
        .map_err(|e| format!("{e:?}"));
    let mut memory = Vec::new();
    for id in 0..m.node_count() {
        let node = m.node(NodeId(id));
        let mut words = Vec::new();
        for block in &m.program().data {
            words.extend(node.dump_mem(block.base, block.len));
        }
        memory.push(words);
    }
    Observation {
        outcome,
        stats: m.stats(),
        memory,
    }
}

#[test]
fn zero_probability_plans_are_bit_identical_to_no_plan() {
    // A window far beyond the run horizon: the plan exists (so the faulted
    // code paths are live) but can never fire within the run.
    let far = u64::MAX / 2;
    let cant_fire = [
        FaultSpec::none(),
        FaultSpec::new(99),
        FaultSpec::new(99).flaky(0).corrupt(0),
        FaultSpec::new(7).window(FaultWindow::link_down(0, 0, far, far + 1_000)),
    ];
    for engine in ENGINES {
        let baseline = observe(engine, None, 1_000_000);
        assert_eq!(baseline.outcome.as_ref().err(), None, "{engine:?} baseline");
        for (i, &spec) in cant_fire.iter().enumerate() {
            let run = observe(engine, Some(spec), 1_000_000);
            assert_eq!(
                run, baseline,
                "zero-probability spec #{i} perturbed {engine:?}"
            );
        }
    }
}

#[test]
fn seeded_faults_are_identical_across_engines() {
    // Flaky links + checksum trailers + a link-down window that overlaps
    // the run: the plan certainly fires, and every engine must observe
    // the exact same world.
    let spec = FaultSpec::new(1234)
        .flaky(100_000)
        .checksums(true)
        .window(FaultWindow::link_down(0, 0, 100, 600));
    let reference = observe(ENGINES[0], Some(spec), 2_000_000);
    assert_eq!(reference.outcome.as_ref().err(), None, "reference run");
    assert!(
        reference.stats.net.faults.blocked_moves > 0,
        "plan never fired — the test is vacuous"
    );
    for engine in &ENGINES[1..] {
        let run = observe(*engine, Some(spec), 2_000_000);
        assert_eq!(run, reference, "{engine:?} diverged under faults");
    }
}

#[test]
fn corruption_drops_reconcile_with_retries() {
    // Under payload corruption every engine agrees, the RPC counter stays
    // exact, and the books balance: each dropped message required at
    // least one corrupted word, and every drop was eventually recovered
    // (the run completed with the exact count, so retries covered them).
    let spec = FaultSpec::new(1234).corrupt(60_000).checksums(true);
    let reference = observe(ENGINES[0], Some(spec), 5_000_000);
    assert_eq!(reference.outcome.as_ref().err(), None, "reference run");
    let stats = &reference.stats;
    let dropped = stats.nodes.faults[FaultKind::CorruptMessage.vector() as usize];
    assert!(dropped > 0, "plan corrupted nothing — weaken the seed");
    assert!(
        stats.net.faults.corrupted_words >= dropped,
        "{} drops but only {} corrupted words",
        dropped,
        stats.net.faults.corrupted_words
    );
    for engine in &ENGINES[1..] {
        let run = observe(*engine, Some(spec), 5_000_000);
        assert_eq!(run, reference, "{engine:?} diverged under corruption");
    }
}
