//! Cross-crate integration: assembler → runtime → machine → network, on
//! machines of several shapes.

use jm_asm::{hdr, Builder, Region};
use jm_isa::instr::{AluOp, MsgPriority, StatClass};
use jm_isa::node::{MeshDims, NodeId};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{JMachine, MachineConfig, StartPolicy};
use jm_runtime::nnr;

/// Every node sends `ROUNDS` counters around a ring; the values must
/// arrive in order and message accounting must balance exactly.
#[test]
fn ring_circulation_conserves_messages() {
    const ROUNDS: i32 = 5;
    for dims in [
        MeshDims::new(4, 1, 1),
        MeshDims::new(2, 2, 2),
        MeshDims::new(4, 4, 1),
    ] {
        let mut b = Builder::new();
        b.reserve("acc", Region::Imem, 1);
        b.reserve("next_route", Region::Imem, 1);

        b.label("main");
        // Precompute successor route.
        b.mov(R0, Special::Nid);
        b.addi(R0, R0, 1);
        b.alu(AluOp::Rem, R0, R0, Special::NNodes);
        b.call(nnr::NID_TO_ROUTE);
        b.mark(StatClass::Compute);
        b.load_seg(A0, "next_route");
        b.mov(MemRef::disp(A0, 0), R0);
        b.load_seg(A0, "acc");
        b.mov(MemRef::disp(A0, 0), 0);
        // Node 0 launches the token with ROUNDS*N hops remaining.
        b.mov(R0, Special::Nid);
        b.bnz(R0, "main_done");
        b.mov(R1, Special::NNodes);
        b.alu(AluOp::Mul, R1, R1, ROUNDS);
        b.load_seg(A1, "next_route");
        b.send(MsgPriority::P0, MemRef::disp(A1, 0));
        b.send2e(MsgPriority::P0, hdr("token", 2), R1);
        b.label("main_done");
        b.suspend();

        b.label("token");
        b.mov(R1, MemRef::disp(A3, 1)); // hops remaining
        b.load_seg(A0, "acc");
        b.mov(R2, MemRef::disp(A0, 0));
        b.addi(R2, R2, 1);
        b.mov(MemRef::disp(A0, 0), R2);
        b.subi(R1, R1, 1);
        b.bz(R1, "token_done");
        b.load_seg(A1, "next_route");
        b.send(MsgPriority::P0, MemRef::disp(A1, 0));
        b.send2e(MsgPriority::P0, hdr("token", 2), R1);
        b.label("token_done");
        b.suspend();

        b.entry("main");
        nnr::install(&mut b);
        let p = b.assemble().unwrap();
        let acc = p.segment("acc");

        let mut m = JMachine::new(
            p,
            MachineConfig::with_dims(dims).start(StartPolicy::AllNodes),
        );
        m.run_until_quiescent(10_000_000)
            .unwrap_or_else(|e| panic!("{dims}: {e}"));

        let nodes = dims.nodes();
        // The token visited every node exactly ROUNDS times (node 0 gets
        // its last visit on the final hop).
        for id in 0..nodes {
            let visits = m.read_word(NodeId(id), acc.base).as_i32();
            assert_eq!(visits, ROUNDS, "node {id} of {dims}");
        }
        let stats = m.stats();
        assert_eq!(stats.nodes.msgs_sent, u64::from(nodes) * ROUNDS as u64);
        assert_eq!(stats.nodes.msgs_sent, stats.net.delivered_msgs);
        assert_eq!(stats.nodes.msgs_sent, stats.nodes.msgs_received);
    }
}

/// Hot-spot traffic: every node bombards node 0; backpressure must produce
/// send faults (the paper's §4.3.2 observation) yet everything delivers.
#[test]
fn hotspot_backpressure_recovers() {
    const PER_NODE: i32 = 40;
    let mut b = Builder::new();
    b.data("hits", Region::Imem, vec![jm_isa::Word::int(0)]);
    b.label("main");
    b.movi(R2, PER_NODE);
    b.label("loop");
    b.send(
        MsgPriority::P0,
        jm_isa::RouteWord::new(jm_isa::Coord::new(0, 0, 0)).to_word(),
    );
    b.send2(MsgPriority::P0, hdr("hit", 3), R2);
    b.sende(MsgPriority::P0, Special::Nid);
    b.subi(R2, R2, 1);
    b.bnz(R2, "loop");
    b.suspend();
    b.label("hit");
    b.load_seg(A0, "hits");
    b.mov(R0, MemRef::disp(A0, 0));
    b.addi(R0, R0, 1);
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    b.entry("main");
    let p = b.assemble().unwrap();
    let hits = p.segment("hits");

    let nodes = 27;
    let mut m = JMachine::new(
        p,
        MachineConfig::with_dims(MeshDims::new(3, 3, 3)).start(StartPolicy::AllNodes),
    );
    m.run_until_quiescent(50_000_000).unwrap();
    assert_eq!(m.read_word(NodeId(0), hits.base).as_i32(), nodes * PER_NODE);
    let stats = m.stats();
    assert!(
        stats.nodes.send_faults > 0,
        "hotspot must cause send faults"
    );
    assert!(m.node(NodeId(0)).queue_high_water(MsgPriority::P0) > 16);
}

/// Priority-1 messages overtake a P0 flood end to end.
#[test]
fn priority_one_overtakes_under_load() {
    let mut b = Builder::new();
    b.data("order", Region::Imem, vec![jm_isa::Word::int(0); 2]);
    b.label("main");
    // Node 1 floods node 0 with P0 messages, then sends one P1 message.
    b.mov(R0, Special::Nid);
    b.bz(R0, "main_done");
    b.movi(R2, 30);
    b.label("flood");
    b.send(
        MsgPriority::P0,
        jm_isa::RouteWord::new(jm_isa::Coord::new(0, 0, 0)).to_word(),
    );
    b.sende(MsgPriority::P0, hdr("p0_msg", 1));
    b.subi(R2, R2, 1);
    b.bnz(R2, "flood");
    b.send(
        MsgPriority::P1,
        jm_isa::RouteWord::new(jm_isa::Coord::new(0, 0, 0)).to_word(),
    );
    b.sende(MsgPriority::P1, hdr("p1_msg", 1));
    b.label("main_done");
    b.suspend();

    // Handlers record arrival order: the counter increments on each P0;
    // the P1 handler records the counter value at its dispatch.
    b.label("p0_msg");
    b.load_seg(A0, "order");
    b.mov(R0, MemRef::disp(A0, 0));
    b.addi(R0, R0, 1);
    b.mov(MemRef::disp(A0, 0), R0);
    // Burn some cycles so the P0 queue stays busy.
    b.movi(R1, 30);
    b.label("burn");
    b.subi(R1, R1, 1);
    b.bnz(R1, "burn");
    b.suspend();
    b.label("p1_msg");
    b.load_seg(A0, "order");
    b.mov(R0, MemRef::disp(A0, 0));
    b.mov(MemRef::disp(A0, 1), R0);
    b.suspend();
    b.entry("main");
    let p = b.assemble().unwrap();
    let order = p.segment("order");
    let mut m = JMachine::new(
        p,
        MachineConfig::with_dims(MeshDims::new(2, 1, 1)).start(StartPolicy::AllNodes),
    );
    m.run_until_quiescent(1_000_000).unwrap();
    let p0_done = m.read_word(NodeId(0), order.base).as_i32();
    let p1_at = m.read_word(NodeId(0), order.base + 1).as_i32();
    assert_eq!(p0_done, 30);
    assert!(
        p1_at < 30,
        "P1 message should preempt the P0 backlog (dispatched after {p1_at} of 30)"
    );
}

/// The statistics pipeline agrees across layers: node-level sends equal
/// network-level message counts for a busy all-to-all pattern.
#[test]
fn stats_are_consistent_across_layers() {
    let mut b = Builder::new();
    b.data("ctr", Region::Imem, vec![jm_isa::Word::int(0)]);
    b.label("main");
    b.load_seg(A2, "ctr");
    b.label("loop");
    b.mov(R0, MemRef::disp(A2, 0));
    b.call(nnr::NID_TO_ROUTE); // clobbers R0-R2, A1
    b.mark(StatClass::Comm);
    b.send(MsgPriority::P0, R0);
    b.send2e(MsgPriority::P0, hdr("sink", 2), Special::Nid);
    b.mov(R2, MemRef::disp(A2, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A2, 0), R2);
    b.alu(AluOp::Lt, R1, R2, Special::NNodes);
    b.bt(R1, "loop");
    b.suspend();
    b.label("sink");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    let p = b.assemble().unwrap();
    let mut m = JMachine::new(p, MachineConfig::new(16).start(StartPolicy::AllNodes));
    m.run_until_quiescent(5_000_000).unwrap();
    let stats = m.stats();
    assert_eq!(stats.nodes.msgs_sent, 16 * 16);
    assert_eq!(stats.net.delivered_msgs, 16 * 16);
    assert_eq!(stats.nodes.msgs_received, 16 * 16);
    assert_eq!(stats.net.injected_msgs, 16 * 16);
    // Every class total is accounted once per node-cycle.
    assert!(stats.nodes.total_cycles() <= stats.cycles * 16);
}

/// A corrupted queue (head word is not a message header) must surface as a
/// `QueueDesync` node error through `run_until_quiescent`, not a panic —
/// and the fault must be counted in the machine statistics.
#[test]
fn queue_desync_is_a_counted_node_error() {
    use jm_isa::consts::FaultKind;
    use jm_isa::word::Word;
    use jm_mdp::NodeError;

    let mut b = Builder::new();
    b.label("main");
    b.suspend();
    b.label("noop");
    b.suspend();
    b.entry("main");
    let p = b.assemble().unwrap();

    let mut m = JMachine::new(p, MachineConfig::new(8).start(StartPolicy::None));
    // Bypass the host's header-framing helper and push a bare integer at
    // the queue head — the hardware-level corruption the dispatcher guards.
    assert!(m
        .node_mut(NodeId(3))
        .deliver(MsgPriority::P0, Word::int(42)));
    // A well-formed delivery behind it wakes the node; dispatch must trip
    // over the corrupted head word before ever reaching this message.
    m.deliver_message(NodeId(3), MsgPriority::P0, "noop", &[]);

    let err = m.run_until_quiescent(10_000).unwrap_err();
    match err {
        jm_machine::MachineError::NodeErrors(errors) => {
            assert_eq!(errors.len(), 1);
            assert_eq!(errors[0].0, NodeId(3));
            assert!(
                matches!(errors[0].1, NodeError::QueueDesync(w) if w == Word::int(42)),
                "wrong error: {:?}",
                errors[0].1
            );
        }
        other => panic!("expected NodeErrors, got {other:?}"),
    }
    assert_eq!(m.stats().nodes.fault_count(FaultKind::QueueDesync), 1);
}
