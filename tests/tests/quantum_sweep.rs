//! Quantum-sweep differential tests: the parallel engine must stay
//! **cycle-exact** with the event engine for every quantum length, not just
//! the default. The quantum Q controls how many cycles each shard advances
//! between synchronization boundaries (DESIGN.md §4.10); correctness must
//! not depend on where those boundaries fall, so every workload here is
//! swept over Q ∈ {1, 2, 4, 8} × threads ∈ {1, 2, 4} (plus Q = 0, the
//! auto-tuned default) and every observable is compared against an
//! `Engine::Event` baseline: the `run_until_quiescent` outcome, the
//! aggregated statistics digest (per-class cycles, handler counters,
//! network delivery record), and the final contents of every declared data
//! block on every node.
//!
//! The sweep deliberately includes the two schedules most likely to break
//! boundary handling:
//!
//! * **Idle-skip across a quantum boundary** — a workload whose dispatch
//!   cost (50 cycles) dwarfs every quantum under test, so each fast-forward
//!   skip crosses several boundaries and the deferred-quiescence rewind
//!   must restore the pre-overrun state exactly.
//! * **A chaos fault plan** — flaky links, checksummed retries, and a
//!   link-down window, where any divergence in cycle numbering would
//!   reseed every downstream fault draw and cascade into the stats.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{
    Engine, FaultSpec, FaultWindow, JMachine, MachineConfig, MachineStats, StartPolicy,
};
use jm_mdp::{MdpConfig, TimingConfig};
use jm_runtime::{nnr, reliable};

/// Quanta under test. 1 forces a boundary every cycle (maximum coupling),
/// 8 leaves multi-cycle slack inside each boundary; 0 is the auto default.
const QUANTA: [u32; 5] = [0, 1, 2, 4, 8];
const THREADS: [u32; 3] = [1, 2, 4];

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    /// `Ok(cycles)` or the error's debug rendering.
    outcome: Result<u64, String>,
    /// Aggregated statistics digest (includes the network delivery record:
    /// delivered words, messages sent/received, per-class cycle counts).
    stats: MachineStats,
    /// Per-node contents of every declared data block.
    memory: Vec<Vec<Word>>,
}

/// Runs `program` under `config` and records every observable.
fn observe(
    program: Program,
    config: MachineConfig,
    max_cycles: u64,
    setup: impl Fn(&mut JMachine),
) -> Observation {
    // Behind a flag: when JM_REPLAY_CAPTURE is set, every swept machine
    // records a replay event log (DESIGN.md §4.11), so a divergence here
    // leaves a bisectable reproducer behind.
    jm_machine::capture_replay_from_env();
    let mut m = JMachine::new(program, config);
    setup(&mut m);
    let outcome = m
        .run_until_quiescent(max_cycles)
        .map_err(|e| format!("{e:?}"));
    let mut memory = Vec::new();
    for id in 0..m.node_count() {
        let node = m.node(NodeId(id));
        let mut words = Vec::new();
        for block in &m.program().data {
            words.extend(node.dump_mem(block.base, block.len));
        }
        memory.push(words);
    }
    Observation {
        outcome,
        stats: m.stats(),
        memory,
    }
}

/// Runs the workload under `Engine::Event`, then under `Parallel(t)` for
/// every (threads, quantum) combination, asserting bit-identical
/// observables against the event baseline. Returns the baseline.
fn assert_quantum_exact(
    label: &str,
    program: impl Fn() -> Program,
    config: MachineConfig,
    max_cycles: u64,
    setup: impl Fn(&mut JMachine),
) -> Observation {
    let event = observe(program(), config.engine(Engine::Event), max_cycles, &setup);
    for &t in &THREADS {
        for &q in &QUANTA {
            let cfg = config.engine(Engine::Parallel(t)).quantum(q);
            let other = observe(program(), cfg, max_cycles, &setup);
            assert_eq!(
                event.outcome, other.outcome,
                "{label}/parallel-{t}/q{q}: run outcome diverged"
            );
            assert_eq!(
                event.stats, other.stats,
                "{label}/parallel-{t}/q{q}: statistics digest diverged"
            );
            assert_eq!(
                event.memory, other.memory,
                "{label}/parallel-{t}/q{q}: final memory diverged"
            );
        }
    }
    event
}

/// Token-ring workload (16 nodes, id-ordered ring, 3 rounds): most nodes
/// idle most of the time, so quiescence detection and idle crediting run
/// constantly while the token hops across shard boundaries.
fn ring_program() -> Program {
    const ROUNDS: i32 = 3;
    let mut b = Builder::new();
    b.reserve("acc", Region::Imem, 1);
    b.reserve("next_route", Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "next_route");
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, "acc");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(R0, Special::Nid);
    b.bnz(R0, "main_done");
    b.mov(R1, Special::NNodes);
    b.alu(AluOp::Mul, R1, R1, ROUNDS);
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("token");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "acc");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "token_done");
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("token_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

#[test]
fn ring_is_quantum_exact() {
    let obs = assert_quantum_exact(
        "ring",
        ring_program,
        MachineConfig::new(16).start(StartPolicy::AllNodes),
        1_000_000,
        |_| {},
    );
    assert!(obs.outcome.is_ok());
    // Every node's accumulator saw all 3 rounds.
    for words in &obs.memory {
        assert_eq!(words[0].as_i32(), 3);
    }
}

/// Ping-pong workload built to force **idle-skip fast-forward across
/// quantum boundaries**: the dispatch cost is cranked to 50 cycles, so
/// after each handler retires the whole machine goes net-idle with the next
/// wake-up 50 cycles out. For every quantum under test (Q ≤ 8) the skip
/// target lies several boundaries past the current one, exercising the
/// decide-path that rewinds the overrun idle tick and jumps `p/x` straight
/// to the wake cycle (DESIGN.md §4.10).
fn pingpong_program() -> Program {
    const VOLLEYS: i32 = 8;
    let mut b = Builder::new();
    b.reserve("hits", Region::Imem, 1);
    b.reserve("peer", Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.alu(AluOp::Xor, R0, R0, 1); // partner: flip the low node-id bit
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "peer");
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, "hits");
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(R0, Special::Nid);
    b.alu(AluOp::And, R0, R0, 1);
    b.bnz(R0, "main_done"); // odd nodes wait for the first serve
    b.movi(R1, VOLLEYS);
    b.load_seg(A1, "peer");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("rally", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("rally");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "hits");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "rally_done");
    b.load_seg(A1, "peer");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("rally", 2), R1);
    b.label("rally_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

#[test]
fn idle_skip_across_quantum_boundary_is_exact() {
    let mdp = MdpConfig {
        timing: TimingConfig {
            dispatch: 50,              // every wake-up lands ≥ 50 cycles out: skips must
            ..TimingConfig::default()  // cross every quantum in the sweep
        },
        ..MdpConfig::default()
    };
    let obs = assert_quantum_exact(
        "idle-skip",
        pingpong_program,
        MachineConfig::new(16).start(StartPolicy::AllNodes).mdp(mdp),
        1_000_000,
        |_| {},
    );
    assert!(obs.outcome.is_ok());
    // The rallies completed (8 volleys split across each pair), and the
    // run was long enough that skips of 50 cycles had to cross quantum
    // boundaries for every Q ≤ 8.
    let total_hits: i32 = obs.memory.iter().map(|w| w[0].as_i32()).sum();
    assert_eq!(total_hits, 8 * 8);
    assert!(
        obs.outcome.as_ref().unwrap() > &400,
        "workload too short to force boundary-crossing skips: {:?}",
        obs.outcome
    );
}

#[test]
fn chaos_fault_plan_is_quantum_exact() {
    // The fault-injection chaos matrix, swept over quanta: flaky links
    // (10% per-flit stall probability), checksummed retries, and a hard
    // link-down window early in the run. Fault draws are keyed by cycle
    // and position (DESIGN.md §4.8), so any boundary-placement bug that
    // shifted a single flit by one cycle would change the draw sequence
    // and diverge loudly.
    let spec = || {
        FaultSpec::new(4242)
            .flaky(100_000)
            .checksums(true)
            .window(FaultWindow::link_down(0, 0, 100, 600))
    };
    let program = || reliable::demo_program(3, 7);
    let obs = assert_quantum_exact(
        "chaos",
        program,
        MachineConfig::new(8).fault(spec()),
        1_000_000,
        |_| {},
    );
    assert!(obs.outcome.is_ok(), "{:?}", obs.outcome);
}

#[test]
fn fixed_cycle_stop_is_quantum_exact() {
    // `run(n)` exercises the fixed-deadline mode, where the final quantum
    // is truncated (deadline not a multiple of Q): every combination must
    // stop at exactly the same cycle with the same statistics snapshot.
    // 1_499 is deliberately coprime with every quantum in the sweep.
    let config = MachineConfig::new(16).start(StartPolicy::AllNodes);
    let mut baseline: Option<MachineStats> = None;
    let mut run_fixed = |cfg: MachineConfig, label: String| {
        let mut m = JMachine::new(ring_program(), cfg);
        m.run(1_499);
        assert_eq!(m.cycle(), 1_499, "{label}: wrong stop cycle");
        let stats = m.stats();
        match &baseline {
            None => baseline = Some(stats),
            Some(base) => assert_eq!(base, &stats, "fixed run: {label} diverged"),
        }
    };
    run_fixed(config.engine(Engine::Event), "event".into());
    for &t in &THREADS {
        for &q in &QUANTA {
            run_fixed(
                config.engine(Engine::Parallel(t)).quantum(q),
                format!("parallel-{t}/q{q}"),
            );
        }
    }
}
